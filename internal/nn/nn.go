// Package nn is a minimal dense neural-network library used to produce the
// trained models the paper monitors: the MLP-d regression network (three
// tanh hidden layers) and the intrusion-detection DNN (five ReLU hidden
// layers with a sigmoid output). It supports forward evaluation,
// backpropagation, and SGD training with MSE or binary-cross-entropy loss —
// enough to reproduce §4.2's model-preparation step entirely in-repo.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation uint8

// Supported activations.
const (
	Identity Activation = iota
	Tanh
	ReLU
	Sigmoid
)

func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	}
	return fmt.Sprintf("activation(%d)", uint8(a))
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		return math.Max(x, 0)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	}
	return x
}

// derivFromOutput returns σ'(z) expressed through y = σ(z).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	}
	return 1
}

// Layer is a dense layer: out = act(W·in + b).
type Layer struct {
	W   [][]float64 // [out][in]
	B   []float64
	Act Activation
	In  int
	Out int
}

// Network is a feed-forward stack of dense layers with a single output.
type Network struct {
	Layers []*Layer
}

// New builds a network with the given layer sizes and activations.
// sizes has len(layers)+1 entries (input size first); acts has one entry per
// layer. Weights use scaled Xavier initialization from rng.
func New(rng *rand.Rand, sizes []int, acts []Activation) (*Network, error) {
	if len(sizes) < 2 || len(acts) != len(sizes)-1 {
		return nil, errors.New("nn: sizes/acts mismatch")
	}
	net := &Network{}
	for l := 0; l < len(acts); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in+out))
		layer := &Layer{In: in, Out: out, Act: acts[l], B: make([]float64, out)}
		layer.W = make([][]float64, out)
		for i := range layer.W {
			layer.W[i] = make([]float64, in)
			for j := range layer.W[i] {
				layer.W[i][j] = rng.NormFloat64() * scale
			}
		}
		net.Layers = append(net.Layers, layer)
	}
	return net, nil
}

// InputDim returns the network's input size.
func (n *Network) InputDim() int { return n.Layers[0].In }

// Forward evaluates the network, returning the scalar output. The network's
// last layer must have a single unit.
func (n *Network) Forward(x []float64) float64 {
	a := x
	for _, l := range n.Layers {
		next := make([]float64, l.Out)
		for i := 0; i < l.Out; i++ {
			s := l.B[i]
			for j := 0; j < l.In; j++ {
				s += l.W[i][j] * a[j]
			}
			next[i] = l.Act.apply(s)
		}
		a = next
	}
	return a[0]
}

// forwardAll evaluates the network keeping every layer's activations for
// backprop; returns them input-first.
func (n *Network) forwardAll(x []float64) [][]float64 {
	acts := make([][]float64, 0, len(n.Layers)+1)
	acts = append(acts, x)
	a := x
	for _, l := range n.Layers {
		next := make([]float64, l.Out)
		for i := 0; i < l.Out; i++ {
			s := l.B[i]
			for j := 0; j < l.In; j++ {
				s += l.W[i][j] * a[j]
			}
			next[i] = l.Act.apply(s)
		}
		acts = append(acts, next)
		a = next
	}
	return acts
}

// Loss selects the training objective.
type Loss uint8

// Supported losses. BCE expects targets in {0, 1} and a sigmoid output.
const (
	MSE Loss = iota
	BCE
)

// TrainConfig controls SGD.
type TrainConfig struct {
	Epochs   int
	LR       float64
	Loss     Loss
	BatchLog int // unused hook for verbose progress; 0 = silent
}

// Train runs plain SGD over (xs, ys) pairs, in order, for the configured
// number of epochs. It returns the final mean loss.
func (n *Network) Train(rng *rand.Rand, xs [][]float64, ys []float64, cfg TrainConfig) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, errors.New("nn: bad training data")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	var last float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			sum += n.step(xs[idx], ys[idx], cfg)
		}
		last = sum / float64(len(xs))
	}
	return last, nil
}

// step performs one SGD update and returns the sample loss.
func (n *Network) step(x []float64, y float64, cfg TrainConfig) float64 {
	acts := n.forwardAll(x)
	out := acts[len(acts)-1][0]

	var loss, dOut float64
	switch cfg.Loss {
	case BCE:
		const eps = 1e-9
		p := math.Min(math.Max(out, eps), 1-eps)
		loss = -(y*math.Log(p) + (1-y)*math.Log(1-p))
		// With a sigmoid output, dL/dz = p − y; fold the activation
		// derivative out by dividing, then multiply back uniformly below.
		dOut = (p - y) / n.Layers[len(n.Layers)-1].Act.derivFromOutput(p)
	default:
		diff := out - y
		loss = diff * diff
		dOut = 2 * diff
	}

	// Backprop: delta starts as dL/da for the output layer.
	delta := []float64{dOut}
	for l := len(n.Layers) - 1; l >= 0; l-- {
		layer := n.Layers[l]
		in := acts[l]
		outAct := acts[l+1]
		// dL/dz = dL/da ⊙ σ'(z)
		dz := make([]float64, layer.Out)
		for i := range dz {
			dz[i] = delta[i] * layer.Act.derivFromOutput(outAct[i])
		}
		// propagate to previous activations before touching weights
		prev := make([]float64, layer.In)
		for j := 0; j < layer.In; j++ {
			var s float64
			for i := 0; i < layer.Out; i++ {
				s += layer.W[i][j] * dz[i]
			}
			prev[j] = s
		}
		for i := 0; i < layer.Out; i++ {
			g := cfg.LR * dz[i]
			layer.B[i] -= g
			row := layer.W[i]
			for j := 0; j < layer.In; j++ {
				row[j] -= g * in[j]
			}
		}
		delta = prev
	}
	return loss
}
