package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardKnownWeights(t *testing.T) {
	net := &Network{Layers: []*Layer{
		{In: 2, Out: 2, Act: Tanh, B: []float64{0.1, -0.1},
			W: [][]float64{{0.5, -0.5}, {1, 1}}},
		{In: 2, Out: 1, Act: Identity, B: []float64{0.2},
			W: [][]float64{{2, -1}}},
	}}
	x := []float64{1, 0.5}
	h0 := math.Tanh(0.5*1 - 0.5*0.5 + 0.1)
	h1 := math.Tanh(1*1 + 1*0.5 - 0.1)
	want := 2*h0 - 1*h1 + 0.2
	if got := net.Forward(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Forward = %v, want %v", got, want)
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(rng, []int{2}, nil); err == nil {
		t.Fatal("expected error for too few sizes")
	}
	if _, err := New(rng, []int{2, 3, 1}, []Activation{Tanh}); err == nil {
		t.Fatal("expected error for acts/sizes mismatch")
	}
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := New(rng, []int{2, 8, 1}, []Activation{Tanh, Identity})
	if err != nil {
		t.Fatal(err)
	}
	// y = 0.7 x0 − 0.3 x1
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}
		xs = append(xs, x)
		ys = append(ys, 0.7*x[0]-0.3*x[1])
	}
	loss, err := net.Train(rng, xs, ys, TrainConfig{Epochs: 120, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Fatalf("training loss = %v, want < 1e-3", loss)
	}
	// Spot-check generalization.
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}
		want := 0.7*x[0] - 0.3*x[1]
		if got := net.Forward(x); math.Abs(got-want) > 0.1 {
			t.Fatalf("Forward(%v) = %v, want ≈ %v", x, got, want)
		}
	}
}

func TestTrainBCEClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := New(rng, []int{2, 8, 1}, []Activation{ReLU, Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	// Separable problem: label = 1 iff x0 + x1 > 0.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 600; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, x)
		if x[0]+x[1] > 0 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	if _, err := net.Train(rng, xs, ys, TrainConfig{Epochs: 60, LR: 0.05, Loss: BCE}); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		pred := 0.0
		if net.Forward(x) > 0.5 {
			pred = 1
		}
		if pred == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("classifier accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestTrainRejectsBadData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, _ := New(rng, []int{1, 1}, []Activation{Identity})
	if _, err := net.Train(rng, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := net.Train(rng, [][]float64{{1}}, []float64{1, 2}, TrainConfig{}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestActivations(t *testing.T) {
	if ReLU.apply(-2) != 0 || ReLU.apply(3) != 3 {
		t.Fatal("relu broken")
	}
	if math.Abs(Sigmoid.apply(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid broken")
	}
	if Identity.apply(1.5) != 1.5 {
		t.Fatal("identity broken")
	}
	if math.Abs(Tanh.derivFromOutput(math.Tanh(0.3))-(1-math.Pow(math.Tanh(0.3), 2))) > 1e-12 {
		t.Fatal("tanh derivative broken")
	}
}
