// Package transport is the real messaging fabric used to validate the
// simulation (§4.7): coordinator and nodes exchange the exact same
// core.Message bytes over TCP, with optional injected one-way latency
// standing in for the paper's us-west-2 ↔ us-east-2 WAN (28 ms each way,
// 56 ms RTT). Every frame is accounted twice: payload bytes (the §4.7
// "payload" series) and estimated wire bytes including framing and TCP/IP
// overhead (the "traffic" series Nethogs would report).
//
// Unlike the paper's prototype, the fabric is fault tolerant: per-frame
// deadlines bound every read and write, nodes reconnect with exponential
// backoff and re-register through a Rejoin message, and the coordinator
// tracks liveness — a silent or disconnected node is marked dead, excluded
// from lazy-sync balancing, and the estimate degrades to the live-node
// average (Coordinator.Degraded) instead of the whole run dying on the
// first dropped frame.
//
// The fabric is also multi-tenant: one coordinator process can host many
// independent monitoring groups (one function and node roster each) behind
// a single listener, routing frames by the GroupID carried in the wire-v2
// batch framing (see frame.go and multi.go). Outbound messages to the same
// peer can be coalesced into batch frames under a flush policy
// (Options.Batch), cutting per-message syscall, header, and simulated-WAN
// overhead on the violation-resolution hot path.
package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"automon/internal/core"
	"automon/internal/obs"
)

// perMessageWireOverhead approximates Ethernet + IP + TCP header bytes per
// frame (small AutoMon frames fit one segment each; a batch frame pays it
// once for all the messages it carries).
const perMessageWireOverhead = 66

// frameHeader is the length prefix added to every frame.
const frameHeader = 4

// maxFrameLen caps the declared length of a frame; anything larger is a
// protocol error, not an allocation request.
const maxFrameLen = 1 << 28

// initialFrameAlloc bounds the up-front buffer for a frame body. The body is
// then read incrementally, so a lying length prefix can never force more
// allocation than bytes actually delivered (plus this constant).
const initialFrameAlloc = 64 << 10

// Protocol-class errors: the peer spoke, but spoke garbage. These are
// distinguished from I/O errors (timeouts, resets, EOF), which the
// fault-tolerance layer treats as survivable connection churn.
var (
	errFrameTooLarge  = errors.New("transport: oversized frame")
	errMalformedFrame = errors.New("transport: malformed frame")
	errNotConnected   = errors.New("transport: not connected")
)

// isProtocolError reports whether err indicates a malformed or hostile peer
// rather than a flaky link.
func isProtocolError(err error) bool {
	return errors.Is(err, errFrameTooLarge) || errors.Is(err, errMalformedFrame)
}

// counterOr returns the registry's counter for name, or a standalone one
// when reg is nil — instrumented code always counts through a live counter
// so Stats-style accessors never report stale zeros.
func counterOr(reg *obs.Registry, name, help string) *obs.Counter {
	if c := reg.Counter(name, help); c != nil {
		return c
	}
	return obs.NewCounter()
}

// histogramOr is counterOr for histograms.
func histogramOr(reg *obs.Registry, name, help string, bounds []float64) *obs.Histogram {
	if h := reg.Histogram(name, help, bounds); h != nil {
		return h
	}
	return obs.NewHistogram(bounds)
}

// TrafficStats counts one side's traffic. The fields are obs counters (views
// over the same instruments a registry scrape reads), updated atomically and
// safe for concurrent reads via Load. The accounting identity
//
//	Wire = Payload + Frames·(frameHeader + perMessageWireOverhead) + BatchOverhead
//
// holds on both directions at all times, including under injected faults.
// Without batching every message is its own frame and BatchOverhead is zero,
// so the identity reduces to the historical per-message form.
//
// The zero value works: counters are created lazily on first use. Bind
// attaches the counters to a registry (and optionally a tracer for per-frame
// events) and must be called before the endpoint starts concurrent I/O —
// ListenCoordinator, ListenMulti and DialNode do this during construction.
type TrafficStats struct {
	MessagesSent     *obs.Counter
	MessagesReceived *obs.Counter
	PayloadSent      *obs.Counter
	PayloadReceived  *obs.Counter
	WireSent         *obs.Counter
	WireReceived     *obs.Counter
	// FramesSent/FramesReceived count physical frames. Equal to the message
	// counters when batching is off; lower when coalescing merges messages.
	FramesSent     *obs.Counter
	FramesReceived *obs.Counter
	// BatchOverheadSent/BatchOverheadReceived count the wire-v2 batch header
	// and per-message sub-header bytes, so the wire identity stays exact.
	BatchOverheadSent     *obs.Counter
	BatchOverheadReceived *obs.Counter

	once   sync.Once
	tracer *obs.Tracer
	peer   int // node id stamped on trace events; -1 on the coordinator side
}

// ensure materializes any counters still nil. Safe to race via sync.Once;
// after the first call the pointer fields never change again.
func (s *TrafficStats) ensure() {
	s.once.Do(func() {
		for _, c := range []**obs.Counter{
			&s.MessagesSent, &s.MessagesReceived,
			&s.PayloadSent, &s.PayloadReceived,
			&s.WireSent, &s.WireReceived,
			&s.FramesSent, &s.FramesReceived,
			&s.BatchOverheadSent, &s.BatchOverheadReceived,
		} {
			if *c == nil {
				*c = obs.NewCounter()
			}
		}
	})
}

// Bind registers the counters under automon_transport_* names carrying the
// given label set (e.g. `side="coordinator"` or `side="node",node="3"`), and
// installs a tracer for frame events. reg and tracer may be nil. Must run
// before the endpoint serves traffic concurrently.
func (s *TrafficStats) Bind(reg *obs.Registry, labelSet string, tracer *obs.Tracer, peer int) {
	s.ensure()
	s.tracer = tracer
	s.peer = peer
	lbl := func(extra string) string {
		if labelSet == "" {
			return "{" + extra + "}"
		}
		return "{" + extra + "," + labelSet + "}"
	}
	const (
		msgsHelp    = "Messages exchanged by a transport endpoint."
		payloadHelp = "Encoded message payload bytes, the paper's payload series."
		wireHelp    = "Estimated wire bytes including framing and TCP/IP overhead."
		framesHelp  = "Physical frames exchanged; batching coalesces messages into fewer frames."
		batchHelp   = "Wire-v2 batch header bytes, part of the wire-byte identity."
	)
	reg.RegisterCounter("automon_transport_messages_total"+lbl(`dir="sent"`), msgsHelp, s.MessagesSent)
	reg.RegisterCounter("automon_transport_messages_total"+lbl(`dir="recv"`), msgsHelp, s.MessagesReceived)
	reg.RegisterCounter("automon_transport_payload_bytes_total"+lbl(`dir="sent"`), payloadHelp, s.PayloadSent)
	reg.RegisterCounter("automon_transport_payload_bytes_total"+lbl(`dir="recv"`), payloadHelp, s.PayloadReceived)
	reg.RegisterCounter("automon_transport_wire_bytes_total"+lbl(`dir="sent"`), wireHelp, s.WireSent)
	reg.RegisterCounter("automon_transport_wire_bytes_total"+lbl(`dir="recv"`), wireHelp, s.WireReceived)
	reg.RegisterCounter("automon_transport_frames_total"+lbl(`dir="sent"`), framesHelp, s.FramesSent)
	reg.RegisterCounter("automon_transport_frames_total"+lbl(`dir="recv"`), framesHelp, s.FramesReceived)
	reg.RegisterCounter("automon_transport_batch_overhead_bytes_total"+lbl(`dir="sent"`), batchHelp, s.BatchOverheadSent)
	reg.RegisterCounter("automon_transport_batch_overhead_bytes_total"+lbl(`dir="recv"`), batchHelp, s.BatchOverheadReceived)
}

// countSend accounts one v1 frame carrying one message.
func (s *TrafficStats) countSend(payload int, msgType string) {
	s.ensure()
	s.MessagesSent.Inc()
	s.FramesSent.Inc()
	s.PayloadSent.Add(int64(payload))
	s.WireSent.Add(int64(payload + frameHeader + perMessageWireOverhead))
	s.tracer.Record(obs.EventFrameSent, s.peer, float64(payload), msgType)
}

// countRecv accounts one v1 frame carrying one message.
func (s *TrafficStats) countRecv(payload int, msgType string) {
	s.ensure()
	s.MessagesReceived.Inc()
	s.FramesReceived.Inc()
	s.PayloadReceived.Add(int64(payload))
	s.WireReceived.Add(int64(payload + frameHeader + perMessageWireOverhead))
	s.tracer.Record(obs.EventFrameReceived, s.peer, float64(payload), msgType)
}

// countSendBatch accounts one v2 batch frame: per-message payload counts and
// trace events, one frame, and the batch header bytes that keep the wire
// identity exact.
func (s *TrafficStats) countSendBatch(sizes []int, types []string) {
	s.ensure()
	total := 0
	for i, sz := range sizes {
		s.MessagesSent.Inc()
		s.PayloadSent.Add(int64(sz))
		s.tracer.Record(obs.EventFrameSent, s.peer, float64(sz), types[i])
		total += sz
	}
	over := batchHdrLen + len(sizes)*batchSubHeader
	s.FramesSent.Inc()
	s.BatchOverheadSent.Add(int64(over))
	s.WireSent.Add(int64(total + over + frameHeader + perMessageWireOverhead))
}

// countRecvBatch is countSendBatch for the inbound direction.
func (s *TrafficStats) countRecvBatch(msgs []core.Message, sizes []int, total int) {
	s.ensure()
	for i, m := range msgs {
		s.MessagesReceived.Inc()
		s.PayloadReceived.Add(int64(sizes[i]))
		s.tracer.Record(obs.EventFrameReceived, s.peer, float64(sizes[i]), m.Type().String())
	}
	over := batchHdrLen + len(msgs)*batchSubHeader
	s.FramesReceived.Inc()
	s.BatchOverheadReceived.Add(int64(over))
	s.WireReceived.Add(int64(total + over + frameHeader + perMessageWireOverhead))
}

// Options configure both endpoints.
type Options struct {
	// Latency is the injected one-way delay per frame (0 = none). Batching
	// pays it once per frame, which is exactly the saving a real WAN gives.
	Latency time.Duration
	// DialTimeout bounds node connection attempts (default 5s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s). A write
	// that cannot complete within it fails the connection, which the
	// fault-tolerance layer treats as a disconnect.
	WriteTimeout time.Duration
	// RequestTimeout bounds a coordinator data-request round trip (default
	// 30s). On expiry the node is marked dead and its connection recycled.
	RequestTimeout time.Duration
	// RegisterTimeout bounds reading the first (registration or rejoin)
	// frame of a new connection (default 10s).
	RegisterTimeout time.Duration
	// ResolveTimeout bounds how long NodeClient.Update waits for a violation
	// to resolve (default 30s).
	ResolveTimeout time.Duration
	// MaxReconnectAttempts is how many times a node retries a lost
	// connection before giving up for good. 0 means the default of 6;
	// negative disables reconnection entirely (a connection error is
	// immediately fatal to the client, the pre-fault-tolerance behavior).
	MaxReconnectAttempts int
	// ReconnectBase is the first reconnect backoff (default 50ms); each
	// attempt doubles it up to ReconnectMax (default 2s). The actual sleep
	// is jittered uniformly over [backoff/2, backoff].
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// ReconnectSeed seeds the jitter RNG (0 = derived from the node id), so
	// tests can make backoff schedules reproducible.
	ReconnectSeed int64
	// Dial replaces net.DialTimeout for node connections. The chaos package
	// uses it to interpose fault-injecting connections.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)

	// Group is the monitoring group a NodeClient belongs to. A non-zero
	// group (or enabled batching) upgrades the client's outbound framing to
	// wire v2 so every frame carries the group tag; group 0 with batching
	// off keeps the legacy v1 framing byte-for-byte.
	Group GroupID
	// Batch configures outbound frame batching (see BatchOptions). The zero
	// value disables coalescing; enabling it upgrades the endpoint's
	// outbound framing to wire v2 for peers that negotiated v2.
	Batch BatchOptions
	// RegisterWorkers bounds how many registration handshakes a coordinator
	// listener processes concurrently — the shared goroutine pool of a
	// multi-tenant process, sized independently of how many groups it
	// hosts. 0 means 32.
	RegisterWorkers int

	// Metrics, when set, receives every transport and protocol instrument of
	// the endpoint (scraped via obs.Serve). Nil leaves the counters
	// unregistered but still live — Stats snapshots keep working.
	Metrics *obs.Registry
	// Tracer, when set, records structured protocol events (frames, deaths,
	// syncs, reconnects). Nil disables tracing at a single branch per event.
	Tracer *obs.Tracer
}

func (o *Options) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.RegisterTimeout <= 0 {
		o.RegisterTimeout = 10 * time.Second
	}
	if o.ResolveTimeout <= 0 {
		o.ResolveTimeout = 30 * time.Second
	}
	if o.MaxReconnectAttempts == 0 {
		o.MaxReconnectAttempts = 6
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 50 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	if o.RegisterWorkers <= 0 {
		o.RegisterWorkers = 32
	}
	if o.Dial == nil {
		o.Dial = net.DialTimeout
	}
}

// Coordinator runs the AutoMon coordinator for one monitoring group. Create
// it with ListenCoordinator (a dedicated single-group listener, the legacy
// entry point) or MultiCoordinator.AddGroup (one group of a multi-tenant
// process); wait for Ready, and read Estimate while nodes stream updates.
// Node connections may come and go: a lost node is marked dead and the
// estimate degrades to the live-node average until it rejoins.
type Coordinator struct {
	srv  *MultiCoordinator
	gid  GroupID
	f    *core.Function
	n    int
	cfg  core.Config
	opts Options
	// Stats counts this group's traffic. Under ListenCoordinator it is the
	// whole endpoint's traffic (including registration reads); under a
	// MultiCoordinator it covers the group's connections after registration,
	// with registration reads accounted on MultiCoordinator.Stats.
	Stats TrafficStats

	deadlineHits   *obs.Counter // data-request round trips that timed out
	shedViolations *obs.Counter // violation reports dropped on a full queue
	tracer         *obs.Tracer

	mu    sync.Mutex // guards coord (single resolution at a time)
	coord *core.Coordinator

	connsMu     sync.Mutex // guards conns, registered, initStarted
	conns       []*coordConn
	registered  int
	initStarted bool

	ready  chan struct{}
	violCh chan *core.Violation
	deadCh chan int
	done   chan struct{}
	err    atomic.Value // first fatal error of this group
	closed atomic.Bool
	wg     sync.WaitGroup
}

type coordConn struct {
	id       int
	conn     net.Conn
	w        *frameWriter
	dataCh   chan *core.DataResponse
	gone     chan struct{} // closed when this connection's reader exits
	goneOnce sync.Once
}

func (cc *coordConn) markGone() { cc.goneOnce.Do(func() { close(cc.gone) }) }

func (cc *coordConn) isGone() bool {
	select {
	case <-cc.gone:
		return true
	default:
		return false
	}
}

// ListenCoordinator starts a single-group coordinator for n nodes on addr
// (use "127.0.0.1:0" for tests). Nodes must connect and register; Ready
// closes after the initial full sync completes. Internally this is a
// MultiCoordinator hosting exactly group 0 in strict mode: frames for any
// other group are the hostile-peer error they always were.
func ListenCoordinator(addr string, f *core.Function, n int, cfg core.Config, opts Options) (*Coordinator, error) {
	opts.defaults()
	mc, err := newMulti(addr, opts, true)
	if err != nil {
		return nil, err
	}
	c, err := mc.addGroup(0, f, n, cfg)
	if err != nil {
		mc.ln.Close()
		return nil, err
	}
	// The sole group's stats are the endpoint's stats: registration reads
	// and per-connection traffic all land on the same instance, preserving
	// the single-tenant accounting exactly.
	mc.stats = &c.Stats
	c.Stats.Bind(opts.Metrics, `side="coordinator"`, opts.Tracer, -1)
	mc.start()
	return c, nil
}

// dispatch serializes every mutation of the core coordinator: violation
// resolutions and node-death full syncs both funnel through here, so
// connection readers stay free to route data responses. Queued violations
// are coalesced per node: while a resolution is running, every sync it fans
// out can prompt still-out-of-zone nodes to re-report, so only each node's
// freshest report is worth resolving — older ones carry stale vectors and
// would only multiply work.
//
// The dispatch queue draining is also the batching sync barrier: once no
// violation is waiting, every writer's pending batch is flushed so no node
// blocks on a sync stranded in a buffer. While a resolution storm is in
// flight, consecutive syncs to the same node coalesce into shared frames.
func (c *Coordinator) dispatch() {
	defer c.wg.Done()
	pending := make(map[int]*core.Violation)
	var order []int
	drain := func() {
		for {
			//automon:allow floatflow violation/death arrival order is inherent event multiplexing; coalescing keeps only each node's freshest report and §4 resolution converges from any order
			select {
			case v := <-c.violCh:
				if _, ok := pending[v.NodeID]; !ok {
					order = append(order, v.NodeID)
				}
				pending[v.NodeID] = v
			case id := <-c.deadCh:
				c.handleDead(id)
			default:
				return
			}
		}
	}
	for {
		if len(order) == 0 {
			c.flushAll()
			//automon:allow floatflow idle wait races shutdown against live events by design; the protocol state a violation produces does not depend on which arm wakes the loop
			select {
			case <-c.done:
				return
			case id := <-c.deadCh:
				c.handleDead(id)
				continue
			case v := <-c.violCh:
				pending[v.NodeID] = v
				order = append(order, v.NodeID)
			}
		}
		drain()
		if len(order) == 0 {
			continue
		}
		id := order[0]
		order = order[1:]
		v := pending[id]
		delete(pending, id)
		c.mu.Lock()
		coord := c.coord
		var err error
		if coord != nil {
			err = coord.HandleViolation(v)
		}
		c.mu.Unlock()
		if err != nil && !errors.Is(err, core.ErrNoLiveNodes) {
			c.fatal(err)
			return
		}
	}
}

// flushAll drains every live connection's pending batch — the explicit
// barrier of the flush policy. A no-op when batching is disabled.
func (c *Coordinator) flushAll() {
	if !c.opts.Batch.enabled() {
		return
	}
	c.connsMu.Lock()
	conns := make([]*coordConn, 0, len(c.conns))
	for _, cc := range c.conns {
		if cc != nil && !cc.isGone() {
			conns = append(conns, cc)
		}
	}
	c.connsMu.Unlock()
	for _, cc := range conns {
		if err := cc.w.flush(); err != nil {
			// The writer closed the connection; its reader reports the death
			// through the usual liveness path.
			continue
		}
	}
}

// handleDead folds a connection death into the core coordinator: the node is
// marked dead and the survivors re-synced, so the estimate degrades to the
// live-node average. If a newer connection already took the slot (a fast
// rejoin raced the death report), the event is stale and ignored.
func (c *Coordinator) handleDead(id int) {
	c.connsMu.Lock()
	cc := c.conns[id]
	replaced := cc != nil && !cc.isGone()
	c.connsMu.Unlock()
	if replaced {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil || !c.coord.Live(id) {
		return
	}
	if err := c.coord.HandleDeparture(id); err != nil && !errors.Is(err, core.ErrNoLiveNodes) {
		c.fatal(err)
	}
}

// Addr returns the listen address (for nodes to dial).
func (c *Coordinator) Addr() string { return c.srv.Addr() }

// Group returns this coordinator's group id (0 under ListenCoordinator).
func (c *Coordinator) Group() GroupID { return c.gid }

// Ready is closed once all nodes registered and the initial sync finished.
func (c *Coordinator) Ready() <-chan struct{} { return c.ready }

// Err returns the first fatal error, if any — of this group or of the
// shared listener. Connection churn is not fatal; only listener failures,
// hostile peers, and safe-zone construction errors are.
func (c *Coordinator) Err() error {
	if e := c.err.Load(); e != nil {
		return e.(error)
	}
	return c.srv.Err()
}

// Estimate returns the coordinator's current approximation of f over the
// average of the live nodes (of all nodes, when none are dead).
func (c *Coordinator) Estimate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil {
		return 0
	}
	return c.coord.Estimate()
}

// Degraded reports whether any node is currently considered dead: the
// ε-guarantee then covers the live-node average only.
func (c *Coordinator) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coord != nil && c.coord.Degraded()
}

// LiveNodes returns how many nodes are currently considered reachable.
func (c *Coordinator) LiveNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil {
		return 0
	}
	return c.coord.LiveCount()
}

// CoordStats snapshots the protocol statistics.
func (c *Coordinator) CoordStats() core.CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil {
		return core.CoordStats{}
	}
	return c.coord.Stats()
}

// Close stops the group. Under ListenCoordinator (where the group owns the
// listener) it stops the whole endpoint; under a MultiCoordinator it closes
// only this group's connections and dispatcher — other tenants keep running.
func (c *Coordinator) Close() {
	if c.srv.single {
		c.srv.Close()
		return
	}
	c.closeGroup()
}

// closeGroup tears down this group's connections and dispatcher.
func (c *Coordinator) closeGroup() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.connsMu.Lock()
	for _, cc := range c.conns {
		if cc != nil {
			cc.conn.Close()
		}
	}
	c.connsMu.Unlock()
	close(c.done)
	c.wg.Wait()
}

// shutdown reports whether this group or the shared endpoint is closing.
func (c *Coordinator) shutdown() bool {
	return c.closed.Load() || c.srv.closed.Load()
}

func (c *Coordinator) fatal(err error) {
	if c.err.Load() == nil {
		c.err.Store(err)
	}
}

// register installs a connection for node id, kicks off the initial sync
// when it completes the roster, and reintegrates rejoining nodes with a full
// sync. The writer carries the wire version negotiated from the node's
// registration frame, so the coordinator always answers in kind.
func (c *Coordinator) register(id int, conn net.Conn, w *frameWriter, x []float64) {
	cc := &coordConn{id: id, conn: conn, w: w, dataCh: make(chan *core.DataResponse, 4), gone: make(chan struct{})}
	c.connsMu.Lock()
	old := c.conns[id]
	c.conns[id] = cc
	startInit := false
	if old == nil {
		c.registered++
		if c.registered == c.n && !c.initStarted {
			c.initStarted = true
			startInit = true
		}
	}
	c.connsMu.Unlock()
	if old != nil {
		old.conn.Close() // retire the stale reader; its death event is ignored
	}
	// Serve the connection immediately so data requests can be answered.
	c.wg.Add(1)
	go c.serveConn(cc)

	if startInit {
		// All nodes registered: build the coordinator over the socket comm
		// and run the initial full sync.
		c.mu.Lock()
		c.coord = core.NewCoordinator(c.f, c.n, c.cfg, &socketComm{c: c})
		err := c.coord.Init()
		c.mu.Unlock()
		if err != nil && !errors.Is(err, core.ErrNoLiveNodes) {
			c.fatal(err)
			return
		}
		// Barrier: the initial syncs must reach every node before Ready.
		c.flushAll()
		close(c.ready)
		return
	}
	c.mu.Lock()
	if c.coord == nil {
		c.mu.Unlock()
		return // pre-init replacement; Init will pull from the new conn
	}
	err := c.coord.HandleRejoin(id, x)
	c.mu.Unlock()
	if err != nil && !errors.Is(err, core.ErrNoLiveNodes) {
		c.fatal(err)
		return
	}
	// Barrier: the rejoin full sync is complete; deliver its messages.
	c.flushAll()
}

func (c *Coordinator) serveConn(cc *coordConn) {
	defer c.wg.Done()
	defer cc.markGone()
	for {
		fb, err := readAnyFrame(cc.conn, 0, &c.Stats)
		if err != nil {
			cc.conn.Close()
			cc.markGone()
			if c.shutdown() {
				return
			}
			c.connsMu.Lock()
			current := c.conns[cc.id] == cc
			c.connsMu.Unlock()
			if current {
				//automon:allow floatflow death report races shutdown by design; both arms retire the connection and no value leaves the select
				select {
				case c.deadCh <- cc.id:
				case <-c.done:
				}
			}
			return
		}
		if fb.v2 && fb.group != c.gid {
			// A registered connection suddenly speaking for another group
			// means the peer is confused; recycle the connection and let the
			// node rejoin cleanly.
			cc.conn.Close()
			continue
		}
		for _, m := range fb.msgs {
			c.route(cc, m)
		}
	}
}

// route handles one inbound message on a registered connection.
func (c *Coordinator) route(cc *coordConn, m core.Message) {
	switch msg := m.(type) {
	case *core.DataResponse:
		// Never block the reader; duplicates beyond the buffer are
		// dropped (RequestData drains stale entries before each request).
		select {
		case cc.dataCh <- msg:
		default:
		}
	case *core.Violation:
		// A full queue means a resolution storm is already in progress;
		// its fan-out will make this node re-check and re-report, so the
		// report is safe to shed.
		select {
		case c.violCh <- msg:
		default:
			c.shedViolations.Inc()
		}
	case *core.Rejoin:
		// A duplicated registration frame (the rejoin that opened this
		// connection, delivered twice by a faulty link); already handled.
	default:
		// Anything else means the stream is corrupt; recycle the
		// connection and let the node rejoin.
		cc.conn.Close()
	}
}

// socketComm implements core.NodeComm over the registered connections. It is
// only invoked while c.mu is held (Init, HandleViolation, HandleDeparture,
// HandleRejoin), so the request/response pairing is race-free and calling
// MarkDead on the core coordinator is safe.
type socketComm struct {
	c *Coordinator
}

// lookup fetches the current connection for a node, or nil if it is gone.
func (s *socketComm) lookup(id int) *coordConn {
	s.c.connsMu.Lock()
	cc := s.c.conns[id]
	s.c.connsMu.Unlock()
	if cc == nil || cc.isGone() {
		return nil
	}
	return cc
}

// noteDead records a mid-resolution node loss. Caller holds c.mu.
func (s *socketComm) noteDead(id int) {
	if s.c.coord != nil {
		s.c.coord.MarkDead(id)
	}
}

func (s *socketComm) RequestData(id int) []float64 {
	cc := s.lookup(id)
	if cc == nil {
		s.noteDead(id)
		return nil
	}
	// Requests are strictly sequenced (the caller holds c.mu); drain any
	// stale or duplicated response so the next arrival answers this request.
	for {
		select {
		case <-cc.dataCh:
			continue
		default:
		}
		break
	}
	// Urgent: the round trip blocks the resolution, so the request (and any
	// syncs buffered before it — order is preserved) must leave now.
	if err := cc.w.writeMsg(&core.DataRequest{NodeID: id}, true); err != nil {
		cc.conn.Close()
		s.noteDead(id)
		return nil
	}
	select {
	case resp := <-cc.dataCh:
		return resp.X
	case <-cc.gone:
		s.noteDead(id)
		return nil
	case <-s.c.done:
		return nil
	case <-time.After(s.c.opts.RequestTimeout):
		// A node that cannot answer a data request is useless even if its
		// TCP connection looks healthy: recycle the connection so the node
		// notices, reconnects, and rejoins with fresh state.
		s.c.deadlineHits.Inc()
		s.c.tracer.Record(obs.EventDeadlineHit, id, s.c.opts.RequestTimeout.Seconds(), "data-request")
		cc.conn.Close()
		s.noteDead(id)
		return nil
	}
}

func (s *socketComm) SendSync(id int, m *core.Sync) {
	s.send(id, m)
}

func (s *socketComm) SendSlack(id int, m *core.Slack) {
	s.send(id, m)
}

// send delivers a sync or slack message. These are flow messages a node
// waits on only until the resolution wave ends, so they are batchable: the
// dispatch barrier (or MaxBytes/MaxDelay) flushes them.
func (s *socketComm) send(id int, m core.Message) {
	cc := s.lookup(id)
	if cc == nil {
		s.noteDead(id)
		return
	}
	if err := cc.w.writeMsg(m, false); err != nil {
		cc.conn.Close()
		s.noteDead(id)
	}
}
