// Package transport is the real messaging fabric used to validate the
// simulation (§4.7): coordinator and nodes exchange the exact same
// core.Message bytes over TCP, with optional injected one-way latency
// standing in for the paper's us-west-2 ↔ us-east-2 WAN (28 ms each way,
// 56 ms RTT). Every frame is accounted twice: payload bytes (the §4.7
// "payload" series) and estimated wire bytes including framing and TCP/IP
// overhead (the "traffic" series Nethogs would report).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"automon/internal/core"
)

// perMessageWireOverhead approximates Ethernet + IP + TCP header bytes per
// message (small AutoMon messages fit one segment each).
const perMessageWireOverhead = 66

// frameHeader is the length prefix added to every message.
const frameHeader = 4

// TrafficStats counts one side's traffic. All fields are updated atomically
// and may be read concurrently.
type TrafficStats struct {
	MessagesSent     atomic.Int64
	MessagesReceived atomic.Int64
	PayloadSent      atomic.Int64
	PayloadReceived  atomic.Int64
	WireSent         atomic.Int64
	WireReceived     atomic.Int64
}

func (s *TrafficStats) countSend(payload int) {
	s.MessagesSent.Add(1)
	s.PayloadSent.Add(int64(payload))
	s.WireSent.Add(int64(payload + frameHeader + perMessageWireOverhead))
}

func (s *TrafficStats) countRecv(payload int) {
	s.MessagesReceived.Add(1)
	s.PayloadReceived.Add(int64(payload))
	s.WireReceived.Add(int64(payload + frameHeader + perMessageWireOverhead))
}

// Options configure both endpoints.
type Options struct {
	// Latency is the injected one-way delay per message (0 = none).
	Latency time.Duration
	// DialTimeout bounds node connection attempts (default 5s).
	DialTimeout time.Duration
}

func (o *Options) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// writeFrame sends one length-prefixed message after the simulated one-way
// latency.
func writeFrame(conn net.Conn, m core.Message, latency time.Duration, stats *TrafficStats, mu *sync.Mutex) error {
	payload := m.Encode()
	if latency > 0 {
		time.Sleep(latency)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	mu.Lock()
	defer mu.Unlock()
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	stats.countSend(len(payload))
	return nil
}

// readFrame reads one length-prefixed message.
func readFrame(conn net.Conn, stats *TrafficStats) (core.Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<28 {
		return nil, fmt.Errorf("transport: oversized frame (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	m, err := core.Decode(buf)
	if err != nil {
		return nil, err
	}
	stats.countRecv(len(buf))
	return m, nil
}

// Coordinator runs the AutoMon coordinator behind a TCP listener. Create it
// with ListenCoordinator, wait for Ready, and read Estimate while nodes
// stream updates.
type Coordinator struct {
	ln    net.Listener
	f     *core.Function
	n     int
	cfg   core.Config
	opts  Options
	Stats TrafficStats

	mu     sync.Mutex // guards coord (single resolution at a time)
	coord  *core.Coordinator
	conns  []*coordConn
	ready  chan struct{}
	violCh chan *core.Violation
	done   chan struct{}
	err    atomic.Value // first fatal error
	closed atomic.Bool
	wg     sync.WaitGroup
}

type coordConn struct {
	conn    net.Conn
	writeMu sync.Mutex
	dataCh  chan *core.DataResponse
}

// ListenCoordinator starts a coordinator for n nodes on addr (use
// "127.0.0.1:0" for tests). Nodes must connect and register; Ready closes
// after the initial full sync completes.
func ListenCoordinator(addr string, f *core.Function, n int, cfg core.Config, opts Options) (*Coordinator, error) {
	opts.defaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		ln:    ln,
		f:     f,
		n:     n,
		cfg:   cfg,
		opts:  opts,
		conns: make([]*coordConn, n),
		ready: make(chan struct{}),
		// Nodes keep at most one violation report outstanding, and the
		// dispatcher coalesces the queue per node, so the buffer only needs
		// to absorb short bursts; it keeps connection readers from ever
		// blocking on the resolution lock (which would deadlock the
		// data-request round-trips inside a resolution).
		violCh: make(chan *core.Violation, 64*n),
		done:   make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	c.wg.Add(1)
	go c.dispatchViolations()
	return c, nil
}

// dispatchViolations serializes violation handling; it is the only caller of
// HandleViolation, so connection readers stay free to route data responses.
// Queued violations are coalesced per node: while a resolution is running,
// every sync it fans out can prompt still-out-of-zone nodes to re-report, so
// only each node's freshest report is worth resolving — older ones carry
// stale vectors and would only multiply work.
func (c *Coordinator) dispatchViolations() {
	defer c.wg.Done()
	pending := make(map[int]*core.Violation)
	var order []int
	drain := func() {
		for {
			select {
			case v := <-c.violCh:
				if _, ok := pending[v.NodeID]; !ok {
					order = append(order, v.NodeID)
				}
				pending[v.NodeID] = v
			default:
				return
			}
		}
	}
	for {
		if len(order) == 0 {
			select {
			case <-c.done:
				return
			case v := <-c.violCh:
				pending[v.NodeID] = v
				order = append(order, v.NodeID)
			}
		}
		drain()
		id := order[0]
		order = order[1:]
		v := pending[id]
		delete(pending, id)
		c.mu.Lock()
		coord := c.coord
		var err error
		if coord != nil {
			err = coord.HandleViolation(v)
		}
		c.mu.Unlock()
		if err != nil {
			c.fatal(err)
			return
		}
	}
}

// Addr returns the listen address (for nodes to dial).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Ready is closed once all nodes registered and the initial sync finished.
func (c *Coordinator) Ready() <-chan struct{} { return c.ready }

// Err returns the first fatal error, if any.
func (c *Coordinator) Err() error {
	if e := c.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Estimate returns the coordinator's current approximation f(x0).
func (c *Coordinator) Estimate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil {
		return 0
	}
	return c.coord.Estimate()
}

// CoordStats snapshots the protocol statistics.
func (c *Coordinator) CoordStats() core.CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil {
		return core.CoordStats{}
	}
	return c.coord.Stats
}

// Close stops the listener and all connections.
func (c *Coordinator) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.ln.Close()
	c.mu.Lock()
	for _, cc := range c.conns {
		if cc != nil {
			cc.conn.Close()
		}
	}
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
}

func (c *Coordinator) fatal(err error) {
	if c.err.Load() == nil {
		c.err.Store(err)
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	registered := 0
	for registered < c.n {
		conn, err := c.ln.Accept()
		if err != nil {
			if !c.closed.Load() {
				c.fatal(err)
			}
			return
		}
		// Registration: the node's first message is a DataResponse with its
		// id and initial local vector.
		m, err := readFrame(conn, &c.Stats)
		if err != nil {
			c.fatal(fmt.Errorf("transport: registration read: %w", err))
			conn.Close()
			continue
		}
		reg, ok := m.(*core.DataResponse)
		if !ok || reg.NodeID < 0 || reg.NodeID >= c.n {
			c.fatal(errors.New("transport: bad registration message"))
			conn.Close()
			continue
		}
		cc := &coordConn{conn: conn, dataCh: make(chan *core.DataResponse, 1)}
		c.mu.Lock()
		c.conns[reg.NodeID] = cc
		c.mu.Unlock()
		// Serve the connection immediately so Init's data requests can be
		// answered. Violations are serialized through c.mu; data responses
		// are routed to the in-flight request.
		c.wg.Add(1)
		go c.serveConn(reg.NodeID, cc)
		registered++
	}

	// All nodes registered: build the coordinator over the socket comm and
	// run the initial full sync.
	c.mu.Lock()
	c.coord = core.NewCoordinator(c.f, c.n, c.cfg, &socketComm{c: c})
	err := c.coord.Init()
	c.mu.Unlock()
	if err != nil {
		c.fatal(err)
		return
	}
	close(c.ready)
}

func (c *Coordinator) serveConn(nodeID int, cc *coordConn) {
	defer c.wg.Done()
	for {
		m, err := readFrame(cc.conn, &c.Stats)
		if err != nil {
			if !c.closed.Load() {
				c.fatal(fmt.Errorf("transport: node %d read: %w", nodeID, err))
			}
			return
		}
		switch msg := m.(type) {
		case *core.DataResponse:
			cc.dataCh <- msg
		case *core.Violation:
			select {
			case c.violCh <- msg:
			default:
				c.fatal(fmt.Errorf("transport: violation queue overflow from node %d", nodeID))
				return
			}
		default:
			c.fatal(fmt.Errorf("transport: unexpected %v from node %d", m.Type(), nodeID))
			return
		}
	}
}

// socketComm implements core.NodeComm over the registered connections. It is
// only invoked while c.mu is held (Init and HandleViolation), so the
// request/response pairing is race-free.
type socketComm struct {
	c *Coordinator
}

func (s *socketComm) RequestData(id int) []float64 {
	// Requests are strictly sequenced (the caller holds c.mu), so the next
	// DataResponse on this connection is the reply to this request.
	cc := s.c.conns[id]
	if err := writeFrame(cc.conn, &core.DataRequest{NodeID: id}, s.c.opts.Latency, &s.c.Stats, &cc.writeMu); err != nil {
		s.c.fatal(err)
		return make([]float64, s.c.f.Dim())
	}
	select {
	case resp := <-cc.dataCh:
		return resp.X
	case <-s.c.done:
		return make([]float64, s.c.f.Dim())
	case <-time.After(30 * time.Second):
		s.c.fatal(fmt.Errorf("transport: node %d data request timed out", id))
		return make([]float64, s.c.f.Dim())
	}
}

func (s *socketComm) SendSync(id int, m *core.Sync) {
	cc := s.c.conns[id]
	if err := writeFrame(cc.conn, m, s.c.opts.Latency, &s.c.Stats, &cc.writeMu); err != nil {
		s.c.fatal(err)
	}
}

func (s *socketComm) SendSlack(id int, m *core.Slack) {
	cc := s.c.conns[id]
	if err := writeFrame(cc.conn, m, s.c.opts.Latency, &s.c.Stats, &cc.writeMu); err != nil {
		s.c.fatal(err)
	}
}
