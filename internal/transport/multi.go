package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"automon/internal/core"
	"automon/internal/obs"
)

// MultiCoordinator hosts many independent monitoring groups — one monitored
// function and node roster each — behind a single listener, sharing one
// accept loop, one bounded registration pool, one obs registry, and one
// process-wide zone cache. Frames are routed to their group's Coordinator by
// the GroupID carried in the wire-v2 framing; legacy v1 peers land in group
// 0. Groups are isolated: a hostile or crashing tenant is rejected (and
// counted) without disturbing the others, and Coordinator.Close on one group
// leaves the rest serving.
type MultiCoordinator struct {
	ln   net.Listener
	opts Options
	// Stats counts traffic not yet attributable to a group — the
	// registration read of each fresh connection. Per-group traffic lands
	// on each group Coordinator's own Stats. Under ListenCoordinator the
	// two are the same instance, preserving single-tenant accounting.
	Stats TrafficStats

	stats         *TrafficStats // effective registration-stats target
	tracer        *obs.Tracer
	rejectedConns *obs.Counter // connections refused at registration
	regSem        chan struct{}

	// single marks a ListenCoordinator-owned server: exactly group 0, with
	// the legacy strict posture that a well-formed but wrong registration
	// (bad node id, unknown group, wrong message type) is a fatal
	// hostile-peer error rather than a tenant to shed.
	single bool

	groupsMu sync.RWMutex
	groups   map[GroupID]*Coordinator

	// sharedZones is created lazily by the first group that asks for zone
	// caching; every later group shares it, so the process-wide memory
	// bound is one cache regardless of tenant count.
	zonesMu     sync.Mutex
	sharedZones *core.ZoneCache

	pendingMu sync.Mutex
	pending   map[net.Conn]struct{}

	done   chan struct{}
	err    atomic.Value
	closed atomic.Bool
	wg     sync.WaitGroup
}

// ListenMulti starts an empty multi-tenant coordinator endpoint on addr.
// Add groups with AddGroup; nodes dial the shared address with their group
// set in Options.Group. A node registering for a group that does not exist
// (yet) is rejected and will retry through its reconnect loop.
func ListenMulti(addr string, opts Options) (*MultiCoordinator, error) {
	opts.defaults()
	mc, err := newMulti(addr, opts, false)
	if err != nil {
		return nil, err
	}
	mc.stats = &mc.Stats
	mc.Stats.Bind(opts.Metrics, `side="coordinator",group="pending"`, opts.Tracer, -1)
	mc.start()
	return mc, nil
}

// newMulti builds the shared endpoint without starting its accept loop, so
// callers can finish wiring (stats targets, the initial group) first.
func newMulti(addr string, opts Options, single bool) (*MultiCoordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mc := &MultiCoordinator{
		ln:      ln,
		opts:    opts,
		tracer:  opts.Tracer,
		regSem:  make(chan struct{}, opts.RegisterWorkers),
		single:  single,
		groups:  make(map[GroupID]*Coordinator),
		pending: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	mc.rejectedConns = counterOr(opts.Metrics, "automon_transport_rejected_registrations_total",
		"Connections refused at registration: unknown group, bad node id, or malformed handshake.")
	return mc, nil
}

// start launches the accept loop.
func (mc *MultiCoordinator) start() {
	mc.wg.Add(1)
	go mc.acceptLoop()
}

// Addr returns the shared listen address.
func (mc *MultiCoordinator) Addr() string { return mc.ln.Addr().String() }

// Err returns the first endpoint-level fatal error (listener failure, or a
// hostile peer in single-group strict mode).
func (mc *MultiCoordinator) Err() error {
	if e := mc.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// RejectedRegistrations returns how many connections were refused at
// registration (unknown group, bad node id, or malformed handshake).
func (mc *MultiCoordinator) RejectedRegistrations() int64 { return mc.rejectedConns.Load() }

// AddGroup registers a new monitoring group gid for n nodes over function
// f and returns its Coordinator handle. The group's core config inherits
// the endpoint's registry and tracer, gets a per-group label on its metric
// series, scoped keys in the process-wide zone cache, and — once all n of
// its nodes register — runs its initial full sync independently of every
// other group.
func (mc *MultiCoordinator) AddGroup(gid GroupID, f *core.Function, n int, cfg core.Config) (*Coordinator, error) {
	if mc.single {
		return nil, errors.New("transport: cannot add groups to a single-group coordinator")
	}
	if mc.closed.Load() {
		return nil, errors.New("transport: endpoint closed")
	}
	c, err := mc.addGroup(gid, f, n, cfg)
	if err != nil {
		return nil, err
	}
	c.Stats.Bind(mc.opts.Metrics, fmt.Sprintf(`side="coordinator",group="%d"`, gid), mc.opts.Tracer, -1)
	return c, nil
}

// addGroup creates and registers the group engine. The caller binds Stats
// (label sets differ between single- and multi-tenant modes).
func (mc *MultiCoordinator) addGroup(gid GroupID, f *core.Function, n int, cfg core.Config) (*Coordinator, error) {
	if gid >= MaxGroups {
		return nil, fmt.Errorf("transport: group id %d out of range [0, %d)", gid, MaxGroups)
	}
	if n <= 0 {
		return nil, fmt.Errorf("transport: group %d needs at least one node", gid)
	}
	// The core coordinator inherits the endpoint's registry and tracer
	// unless the caller wired its own into the core config.
	if cfg.Metrics == nil {
		cfg.Metrics = mc.opts.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = mc.opts.Tracer
	}
	lbl := ""
	if !mc.single {
		lbl = fmt.Sprintf(`{group="%d"}`, gid)
		if cfg.MetricsLabels == "" {
			cfg.MetricsLabels = fmt.Sprintf(`group="%d"`, gid)
		}
		// Zone caching becomes process-wide: the first group that wants a
		// cache creates it, later groups share it, and per-group key scopes
		// keep quantized coordinates from different functions apart.
		if cfg.SharedZoneCache == nil && cfg.ZoneCacheSize > 0 {
			cfg.SharedZoneCache = mc.zoneCache(cfg.ZoneCacheSize)
		}
		if cfg.SharedZoneCache != nil && cfg.ZoneCacheScope == "" {
			cfg.ZoneCacheScope = fmt.Sprintf("g%d|", gid)
		}
	}
	c := &Coordinator{
		srv:   mc,
		gid:   gid,
		f:     f,
		n:     n,
		cfg:   cfg,
		opts:  mc.opts,
		conns: make([]*coordConn, n),
		ready: make(chan struct{}),
		// Nodes keep at most one violation report outstanding, and the
		// dispatcher coalesces the queue per node, so the buffer only needs
		// to absorb short bursts; it keeps connection readers from ever
		// blocking on the resolution lock (which would deadlock the
		// data-request round-trips inside a resolution).
		violCh: make(chan *core.Violation, 64*n),
		deadCh: make(chan int, 4*n),
		done:   make(chan struct{}),
	}
	c.tracer = mc.opts.Tracer
	c.deadlineHits = counterOr(mc.opts.Metrics, "automon_transport_request_timeouts_total"+lbl,
		"Data-request round trips that exceeded RequestTimeout (node recycled).")
	c.shedViolations = counterOr(mc.opts.Metrics, "automon_transport_shed_violations_total"+lbl,
		"Violation reports dropped because a resolution storm filled the queue.")

	mc.groupsMu.Lock()
	if _, dup := mc.groups[gid]; dup {
		mc.groupsMu.Unlock()
		return nil, fmt.Errorf("transport: group %d already exists", gid)
	}
	mc.groups[gid] = c
	mc.groupsMu.Unlock()

	c.wg.Add(1)
	go c.dispatch()
	return c, nil
}

// Group returns the Coordinator for gid, or nil.
func (mc *MultiCoordinator) Group(gid GroupID) *Coordinator {
	mc.groupsMu.RLock()
	defer mc.groupsMu.RUnlock()
	return mc.groups[gid]
}

// zoneCache lazily creates the process-wide shared zone cache.
func (mc *MultiCoordinator) zoneCache(size int) *core.ZoneCache {
	mc.zonesMu.Lock()
	defer mc.zonesMu.Unlock()
	if mc.sharedZones == nil {
		mc.sharedZones = core.NewZoneCache(size)
	}
	return mc.sharedZones
}

// Close stops the listener, every pending registration, and every group.
// Groups close in ascending GroupID order so shutdown traces and metric
// final states are reproducible run to run.
func (mc *MultiCoordinator) Close() {
	if !mc.closed.CompareAndSwap(false, true) {
		return
	}
	mc.ln.Close()
	mc.pendingMu.Lock()
	conns := make([]net.Conn, 0, len(mc.pending))
	for conn := range mc.pending {
		conns = append(conns, conn)
	}
	mc.pendingMu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	close(mc.done)
	mc.groupsMu.RLock()
	gids := make([]GroupID, 0, len(mc.groups))
	for gid := range mc.groups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	groups := make([]*Coordinator, 0, len(gids))
	for _, gid := range gids {
		groups = append(groups, mc.groups[gid])
	}
	mc.groupsMu.RUnlock()
	for _, g := range groups {
		g.closeGroup()
	}
	mc.wg.Wait()
}

func (mc *MultiCoordinator) fatal(err error) {
	if mc.err.Load() == nil {
		mc.err.Store(err)
	}
}

func (mc *MultiCoordinator) acceptLoop() {
	defer mc.wg.Done()
	for {
		conn, err := mc.ln.Accept()
		if err != nil {
			if !mc.closed.Load() {
				mc.fatal(err)
			}
			return
		}
		mc.pendingMu.Lock()
		mc.pending[conn] = struct{}{}
		mc.pendingMu.Unlock()
		mc.wg.Add(1)
		go mc.handleNewConn(conn)
	}
}

// reject closes a connection refused at registration. In strict single-group
// mode a well-formed but wrong handshake is hostile and fatal (the legacy
// posture); in multi-tenant mode it only costs the one connection — tenant
// isolation means a confused or malicious client cannot take the endpoint
// down.
func (mc *MultiCoordinator) reject(conn net.Conn, err error) {
	conn.Close()
	mc.rejectedConns.Inc()
	if mc.single && !mc.closed.Load() {
		mc.fatal(err)
	}
}

// handleNewConn reads the first frame of a fresh connection — through the
// bounded registration pool — and routes it to its group: a DataResponse
// registers a node for the first time, a Rejoin re-registers one after a
// connection loss. I/O errors here are survivable churn (the node will
// retry); a peer that delivers a well-formed but wrong registration, or
// frames that cannot be parsed at all, is rejected.
func (mc *MultiCoordinator) handleNewConn(conn net.Conn) {
	defer mc.wg.Done()
	//automon:allow floatflow registration backpressure races shutdown by design; either arm ends with the connection registered once or closed, never a protocol value
	select {
	case mc.regSem <- struct{}{}:
	case <-mc.done:
		conn.Close()
		return
	}
	defer func() { <-mc.regSem }()

	fb, err := readAnyFrame(conn, mc.opts.RegisterTimeout, mc.stats)
	mc.pendingMu.Lock()
	delete(mc.pending, conn)
	mc.pendingMu.Unlock()
	if err != nil {
		conn.Close()
		if !mc.closed.Load() && isProtocolError(err) {
			mc.rejectedConns.Inc()
			if mc.single {
				mc.fatal(fmt.Errorf("transport: registration read: %w", err))
			}
		}
		return
	}
	g := mc.Group(fb.group)
	if g == nil || g.closed.Load() {
		mc.reject(conn, fmt.Errorf("transport: registration for unknown group %d", fb.group))
		return
	}
	var id int
	var x []float64
	switch reg := fb.msgs[0].(type) {
	case *core.DataResponse:
		id, x = reg.NodeID, reg.X
	case *core.Rejoin:
		id, x = reg.NodeID, reg.X
	default:
		mc.reject(conn, fmt.Errorf("transport: bad registration message %v", fb.msgs[0].Type()))
		return
	}
	if id < 0 || id >= g.n {
		mc.reject(conn, errors.New("transport: bad registration message"))
		return
	}
	w := newFrameWriter(conn, g.gid, fb.v2, mc.opts, &g.Stats)
	g.register(id, conn, w, x)
	// A batched registration frame may carry follow-up messages (a node
	// flushing its first report with its rejoin); route them through the
	// freshly installed connection.
	if len(fb.msgs) > 1 {
		g.connsMu.Lock()
		cc := g.conns[id]
		g.connsMu.Unlock()
		if cc != nil && cc.conn == conn {
			for _, m := range fb.msgs[1:] {
				g.route(cc, m)
			}
		}
	}
}
