package transport

import (
	"net"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
)

func TestDialNodeRefusesDeadAddress(t *testing.T) {
	f := funcs.InnerProduct(1)
	if _, err := DialNode("127.0.0.1:1", 0, f, []float64{0, 0},
		Options{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial to a dead address must fail")
	}
}

func TestCoordinatorRejectsGarbageFrames(t *testing.T) {
	f := funcs.InnerProduct(1)
	coord, err := ListenCoordinator("127.0.0.1:0", f, 1, core.Config{Epsilon: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header claiming an absurd length must be rejected without
	// allocation.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for coord.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("oversized frame not detected")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestNodeSurvivesCoordinatorShutdown(t *testing.T) {
	f := funcs.InnerProduct(1)
	initial := [][]float64{{1, 1}, {1, 1}}
	coord, nodes := startCluster(t, f, 2, core.Config{Epsilon: 0.5}, Options{}, initial)
	coord.Close()
	// Updates after shutdown must surface an error, not hang or panic.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := nodes[0].Update([]float64{50, 50}); err != nil {
			for _, nd := range nodes {
				nd.Close()
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("node never noticed the coordinator was gone")
}

func TestWaitReadyFailsFastOnDeadClient(t *testing.T) {
	// A listener that drops every connection immediately: registration
	// succeeds at the TCP level, but the client's serve loop dies right away
	// and — with reconnection disabled — the client fails permanently.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	f := funcs.InnerProduct(1)
	node, err := DialNode(ln.Addr().String(), 0, f, []float64{0, 0},
		Options{MaxReconnectAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Wait until the failure is recorded, then WaitReady must return at once
	// even with a long timeout — not sit out the full duration.
	deadline := time.Now().Add(5 * time.Second)
	for node.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("client never recorded the connection failure")
		}
		time.Sleep(10 * time.Millisecond)
	}
	start := time.Now()
	if err := node.WaitReady(time.Hour); err == nil {
		t.Fatal("WaitReady succeeded on a dead client")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("WaitReady took %v on an already-failed client; must return immediately", elapsed)
	}
}

func TestWaitReadyTimesOut(t *testing.T) {
	f := funcs.InnerProduct(1)
	// Coordinator expects 2 nodes; only one dials in, so Ready never fires
	// and the node's WaitReady must time out rather than block forever.
	coord, err := ListenCoordinator("127.0.0.1:0", f, 2, core.Config{Epsilon: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	node, err := DialNode(coord.Addr(), 0, f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.WaitReady(200 * time.Millisecond); err == nil {
		t.Fatal("WaitReady should time out without a first sync")
	}
}
