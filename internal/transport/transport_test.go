package transport

import (
	"math"
	"sync"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
)

// startCluster brings up a coordinator and n nodes over loopback TCP.
func startCluster(t *testing.T, f *core.Function, n int, cfg core.Config, opts Options, initial [][]float64) (*Coordinator, []*NodeClient) {
	t.Helper()
	coord, err := ListenCoordinator("127.0.0.1:0", f, n, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*NodeClient, n)
	for i := 0; i < n; i++ {
		nodes[i], err = DialNode(coord.Addr(), i, f, initial[i], opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-coord.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never became ready")
	}
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if err := nd.WaitReady(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return coord, nodes
}

func TestClusterMonitorsInnerProduct(t *testing.T) {
	const half, n = 2, 3
	f := funcs.InnerProduct(half)
	initial := [][]float64{
		{0.5, 0.5, 1, 1},
		{0.5, 0.5, 1, 1},
		{0.5, 0.5, 1, 1},
	}
	eps := 0.2
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: eps}, Options{}, initial)
	defer coord.Close()
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	// f(x̄) = 0.5+0.5 = 1 initially.
	if got := coord.Estimate(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("initial estimate = %v, want 1", got)
	}

	// Drift all nodes upward; estimate must track within ε after updates.
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *NodeClient) {
			defer wg.Done()
			for step := 1; step <= 30; step++ {
				u := 0.5 + 0.05*float64(step)
				if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
					t.Errorf("node %d: %v", i, err)
					return
				}
			}
		}(i, nd)
	}
	wg.Wait()
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	// Stale violations queued by early-unblocked updates may still be
	// resolving; wait for the message flow to quiesce before asserting.
	stable, last := 0, int64(-1)
	for stable < 5 {
		time.Sleep(10 * time.Millisecond)
		cur := coord.Stats.MessagesSent.Load() + coord.Stats.MessagesReceived.Load()
		if cur == last {
			stable++
		} else {
			stable = 0
		}
		last = cur
	}
	truth := 2 * (0.5 + 0.05*30) // ⟨u,v⟩ with u=2, v=1 per coord
	if got := coord.Estimate(); math.Abs(got-truth) > eps+1e-9 {
		t.Fatalf("estimate %v drifted beyond ε from %v", got, truth)
	}
	stats := coord.CoordStats()
	if stats.FullSyncs == 0 {
		t.Fatal("expected at least the initial full sync")
	}
}

func TestClusterCountsTraffic(t *testing.T) {
	const half, n = 2, 2
	f := funcs.InnerProduct(half)
	initial := [][]float64{{0, 0, 1, 1}, {0, 0, 1, 1}}
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: 0.05}, Options{}, initial)
	defer coord.Close()

	for step := 1; step <= 20; step++ {
		for _, nd := range nodes {
			u := 0.1 * float64(step)
			if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Wait for in-flight frames to quiesce before snapshotting counters.
	stable := 0
	var lastSent, lastRecv int64
	for stable < 5 {
		time.Sleep(20 * time.Millisecond)
		s, r := coord.Stats.MessagesSent.Load(), coord.Stats.MessagesReceived.Load()
		var ns, nr int64
		for _, nd := range nodes {
			ns += nd.Stats.MessagesSent.Load()
			nr += nd.Stats.MessagesReceived.Load()
		}
		if s == lastSent && r == lastRecv && ns == r && nr == s {
			stable++
		} else {
			stable = 0
		}
		lastSent, lastRecv = s, r
	}
	sent := coord.Stats.MessagesSent.Load()
	recv := coord.Stats.MessagesReceived.Load()
	if sent == 0 || recv == 0 {
		t.Fatalf("traffic not accounted: sent=%d recv=%d", sent, recv)
	}
	if coord.Stats.WireSent.Load() <= coord.Stats.PayloadSent.Load() {
		t.Fatal("wire bytes must exceed payload bytes")
	}
	// Node-side and coordinator-side message counts must mirror each other.
	var nodeSent, nodeRecv int64
	for _, nd := range nodes {
		nodeSent += nd.Stats.MessagesSent.Load()
		nodeRecv += nd.Stats.MessagesReceived.Load()
	}
	for _, nd := range nodes {
		nd.Close()
	}
	if nodeSent != recv || nodeRecv != sent {
		t.Fatalf("asymmetric accounting: nodes sent %d (coord recv %d), nodes recv %d (coord sent %d)",
			nodeSent, recv, nodeRecv, sent)
	}
}

func TestClusterWithLatency(t *testing.T) {
	const half, n = 1, 2
	f := funcs.InnerProduct(half)
	initial := [][]float64{{1, 1}, {1, 1}}
	start := time.Now()
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: 0.5}, Options{Latency: 5 * time.Millisecond}, initial)
	defer coord.Close()
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	// Init alone exchanges ≥ 3 messages per node with 5ms one-way latency.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency injection ineffective: setup took %v", elapsed)
	}
	if err := nodes[0].Update([]float64{5, 5}); err != nil { // forces violation round-trip
		t.Fatal(err)
	}
}

func TestBadRegistrationRejected(t *testing.T) {
	f := funcs.InnerProduct(1)
	coord, err := ListenCoordinator("127.0.0.1:0", f, 1, core.Config{Epsilon: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// Node id out of range.
	if _, err := DialNode(coord.Addr(), 7, f, []float64{0, 0}, Options{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for coord.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("bad registration not detected")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}
