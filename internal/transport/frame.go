package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"automon/internal/core"
)

// GroupID identifies one monitoring group (one monitored function and its
// node roster) inside a multi-tenant coordinator process. Group 0 is the
// implicit group of every legacy (wire v1) peer.
type GroupID uint16

// MaxGroups bounds the group-id space. A batch frame naming a group outside
// [0, MaxGroups) is malformed — the bound keeps a hostile frame from standing
// up unbounded per-group state and gives the fuzzer a crisp invariant.
const MaxGroups = 4096

// Wire format.
//
// v1 (legacy): [4-byte LE length][payload], one message per frame. Legal
// lengths are ≤ maxFrameLen (1<<28), so the top nibble of the length word is
// always 0x0 or 0x1.
//
// v2 (batch): the top nibble of the first word is batchTag (0xB) — a value no
// legal v1 length can produce — and the low 28 bits hold the body length:
//
//	[4-byte LE  batchTag<<28 | bodyLen]
//	[2-byte LE  group][2-byte LE count]
//	count × { [4-byte LE sub-length][payload] }
//
// A reader distinguishes the versions from the first word alone, so both can
// share one connection: the coordinator answers each peer in the version of
// its registration frame (wire-version negotiation).
const (
	// batchTag marks a v2 batch frame in the top nibble of the length word.
	batchTag = 0xB
	// batchLenMask extracts the 28-bit body length from the first word.
	batchLenMask = 1<<28 - 1
	// batchHdrLen is the batch body header: u16 group + u16 count.
	batchHdrLen = 4
	// batchSubHeader is the per-message length prefix inside a batch body.
	batchSubHeader = 4
)

// BatchOptions configure outbound frame batching on a connection: messages
// to the same peer are coalesced into one batch frame until a flush trigger
// fires. The zero value disables coalescing — every message leaves
// immediately in its own frame, which is the legacy behavior.
type BatchOptions struct {
	// MaxBytes flushes the pending batch once its body (sub-headers plus
	// payloads) reaches this size. 0 disables coalescing.
	MaxBytes int
	// MaxDelay bounds how long a buffered message may wait before the batch
	// is flushed by a timer, so a lull in protocol traffic cannot strand a
	// sync in the buffer. 0 means no timer: only MaxBytes, urgent messages
	// and explicit barrier flushes drain the buffer.
	MaxDelay time.Duration
}

// enabled reports whether messages may be held back for coalescing.
func (b BatchOptions) enabled() bool { return b.MaxBytes > 0 }

// inFrame is one decoded inbound frame: the group it addresses, the messages
// it carried, and which wire version framed it.
type inFrame struct {
	group GroupID
	msgs  []core.Message
	v2    bool
}

// writeFrame sends one length-prefixed v1 message after the simulated one-way
// latency. The header and payload go out in a single Write so that a frame
// is the atomic unit a fault injector can drop or duplicate without
// desynchronizing the stream.
func writeFrame(conn net.Conn, m core.Message, latency, timeout time.Duration, stats *TrafficStats, mu *sync.Mutex) error {
	payload := m.Encode()
	if len(payload) > maxFrameLen {
		return fmt.Errorf("%w: encoding %d bytes", errFrameTooLarge, len(payload))
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[:frameHeader], uint32(len(payload)))
	copy(buf[frameHeader:], payload)
	mu.Lock()
	defer mu.Unlock()
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if _, err := conn.Write(buf); err != nil {
		return err
	}
	stats.countSend(len(payload), m.Type().String())
	return nil
}

// readAnyFrame reads one frame of either wire version, with an optional
// deadline (0 = block until the peer speaks or the connection dies).
func readAnyFrame(conn net.Conn, timeout time.Duration, stats *TrafficStats) (*inFrame, error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	return decodeAnyFrame(conn, stats)
}

// decodeAnyFrame reads one v1 or v2 frame from r, dispatching on the top
// nibble of the first word. Allocation tracks delivered bytes for both
// versions, so a hostile length prefix costs at most initialFrameAlloc.
func decodeAnyFrame(r io.Reader, stats *TrafficStats) (*inFrame, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	word := binary.LittleEndian.Uint32(hdr[:])
	if word>>28 == batchTag {
		return decodeBatchBody(r, word&batchLenMask, stats)
	}
	m, err := decodeV1Body(r, word, stats)
	if err != nil {
		return nil, err
	}
	return &inFrame{msgs: []core.Message{m}}, nil
}

// decodeFrame reads one legacy v1 frame from r: length word, then exactly one
// message. Kept as its own entry point so the v1 fuzz target exercises the
// legacy path unchanged.
func decodeFrame(r io.Reader, stats *TrafficStats) (core.Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return decodeV1Body(r, binary.LittleEndian.Uint32(hdr[:]), stats)
}

// decodeV1Body reads and decodes a v1 frame body of declared length n.
func decodeV1Body(r io.Reader, n uint32, stats *TrafficStats) (core.Message, error) {
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: declared %d bytes", errFrameTooLarge, n)
	}
	body, err := readBody(r, int(n))
	if err != nil {
		return nil, err
	}
	m, err := core.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errMalformedFrame, err)
	}
	stats.countRecv(int(n), m.Type().String())
	return m, nil
}

// decodeBatchBody parses a v2 batch body of declared length bodyLen. Every
// structural fault — short body, out-of-range group, zero or overrunning
// count, truncated or undecodable sub-message, trailing bytes — is a
// protocol error; nothing is counted in stats unless the whole frame parses.
func decodeBatchBody(r io.Reader, bodyLen uint32, stats *TrafficStats) (*inFrame, error) {
	if bodyLen < batchHdrLen+batchSubHeader+1 {
		return nil, fmt.Errorf("%w: batch body declares %d bytes", errMalformedFrame, bodyLen)
	}
	b, err := readBody(r, int(bodyLen))
	if err != nil {
		return nil, err
	}
	group := binary.LittleEndian.Uint16(b[0:2])
	count := int(binary.LittleEndian.Uint16(b[2:4]))
	if group >= MaxGroups {
		return nil, fmt.Errorf("%w: group id %d out of range", errMalformedFrame, group)
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: empty batch", errMalformedFrame)
	}
	if count*batchSubHeader > len(b)-batchHdrLen {
		return nil, fmt.Errorf("%w: batch count %d overruns body", errMalformedFrame, count)
	}
	msgs := make([]core.Message, 0, count)
	sizes := make([]int, 0, count)
	off, total := batchHdrLen, 0
	for i := 0; i < count; i++ {
		if len(b)-off < batchSubHeader {
			return nil, fmt.Errorf("%w: truncated sub-message header", errMalformedFrame)
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += batchSubHeader
		if n > len(b)-off {
			return nil, fmt.Errorf("%w: sub-message declares %d of %d remaining bytes", errMalformedFrame, n, len(b)-off)
		}
		m, err := core.Decode(b[off : off+n])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errMalformedFrame, err)
		}
		off += n
		total += n
		msgs = append(msgs, m)
		sizes = append(sizes, n)
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", errMalformedFrame, len(b)-off)
	}
	stats.countRecvBatch(msgs, sizes, total)
	return &inFrame{group: GroupID(group), msgs: msgs, v2: true}, nil
}

// readBody reads exactly n declared bytes. The buffer grows with delivered
// bytes (capped up front at initialFrameAlloc), so a lying length prefix can
// never force more allocation than the peer actually sends.
func readBody(r io.Reader, n int) ([]byte, error) {
	var body bytes.Buffer
	grow := n
	if grow > initialFrameAlloc {
		grow = initialFrameAlloc
	}
	body.Grow(grow)
	if _, err := io.CopyN(&body, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body.Bytes(), nil
}

// frameWriter owns one connection's outbound framing: wire-version selection
// (negotiated per peer), group tagging, and the batching flush policy. All
// sends to a peer funnel through its writer, which both serializes the
// stream and guarantees per-peer message order is exactly the order of
// writeMsg calls — buffered messages are never reordered around urgent ones,
// because an urgent message flushes the whole buffer including itself.
//
// Flush triggers, any of which drains the buffer in one batch frame:
//   - the body reaching BatchOptions.MaxBytes,
//   - a writeMsg with urgent=true (request/response round trips, node
//     reports — anything a peer is actively waiting on),
//   - an explicit flush() — the coordinator's sync barriers,
//   - the BatchOptions.MaxDelay timer.
//
// Each batch frame goes out in a single Write, preserving the invariant that
// a frame is the atomic unit a fault injector can drop or duplicate.
type frameWriter struct {
	conn    net.Conn
	stats   *TrafficStats
	latency time.Duration
	timeout time.Duration
	batch   BatchOptions
	v2      bool // peer speaks wire v2 (group-tagged batch frames)
	group   GroupID

	mu    sync.Mutex
	body  []byte // pending batch body: sub-headers + payloads
	sizes []int
	types []string
	timer *time.Timer
	// timerGen identifies the currently armed timer: a fired callback whose
	// generation is stale belongs to a batch an explicit flush already
	// drained (Stop raced the firing) and must not touch the writer.
	timerGen uint64
	err      error // sticky: once a write fails the connection is done
}

// newFrameWriter builds the writer for one connection. v2 selects the wire
// version the peer negotiated; a v1 writer ignores group and batching (the
// legacy format cannot express either).
func newFrameWriter(conn net.Conn, group GroupID, v2 bool, opts Options, stats *TrafficStats) *frameWriter {
	return &frameWriter{
		conn:    conn,
		stats:   stats,
		latency: opts.Latency,
		timeout: opts.WriteTimeout,
		batch:   opts.Batch,
		v2:      v2,
		group:   group,
	}
}

// writeMsg encodes and sends m. With batching disabled (or urgent set, or a
// v1 peer) the message — and everything buffered before it — leaves
// immediately; otherwise it is coalesced until a flush trigger fires.
func (w *frameWriter) writeMsg(m core.Message, urgent bool) error {
	payload := m.Encode()
	if len(payload) > maxFrameLen {
		return fmt.Errorf("%w: encoding %d bytes", errFrameTooLarge, len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if !w.v2 {
		return w.writeV1Locked(payload, m.Type().String())
	}
	// A batch body must fit the 28-bit length field (and count must fit
	// u16); flush the running batch first if this message would overflow it.
	if len(w.body)+batchSubHeader+len(payload) > batchLenMask-batchHdrLen ||
		len(w.sizes) >= 1<<16-1 {
		if err := w.flushLocked(); err != nil {
			return err
		}
	}
	var sub [batchSubHeader]byte
	binary.LittleEndian.PutUint32(sub[:], uint32(len(payload)))
	w.body = append(w.body, sub[:]...)
	w.body = append(w.body, payload...)
	w.sizes = append(w.sizes, len(payload))
	w.types = append(w.types, m.Type().String())
	if urgent || !w.batch.enabled() || len(w.body) >= w.batch.MaxBytes {
		return w.flushLocked()
	}
	if w.timer == nil && w.batch.MaxDelay > 0 {
		// The callback identifies itself by the generation it was armed
		// with, captured by value before the timer starts, so the check in
		// timerFlush needs no read that could race this assignment.
		w.timerGen++
		gen := w.timerGen
		w.timer = time.AfterFunc(w.batch.MaxDelay, func() { w.timerFlush(gen) })
	}
	return nil
}

// flush drains any buffered messages in one batch frame. It is the explicit
// sync-barrier trigger: the coordinator calls it when a resolution wave
// completes, so no node waits on a sync stranded in a buffer.
func (w *frameWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

// timerFlush is the MaxDelay backstop. gen is the generation the firing
// timer was armed with: if it is stale, an explicit flush already drained
// the batch it was armed for and a newer timer may own the next batch — a
// stale callback must neither clobber that timer nor flush the new batch
// before its MaxDelay.
func (w *frameWriter) timerFlush(gen uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timer == nil || gen != w.timerGen {
		return
	}
	w.timer = nil
	if err := w.flushLocked(); err != nil {
		// flushLocked already closed the connection and latched the error;
		// the connection's reader surfaces it as a disconnect.
		return
	}
}

// writeV1Locked emits one legacy frame. Caller holds w.mu.
func (w *frameWriter) writeV1Locked(payload []byte, msgType string) error {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[:frameHeader], uint32(len(payload)))
	copy(buf[frameHeader:], payload)
	if err := w.writeLocked(buf); err != nil {
		return err
	}
	w.stats.countSend(len(payload), msgType)
	return nil
}

// flushLocked emits the pending batch as one v2 frame. Caller holds w.mu.
func (w *frameWriter) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if len(w.sizes) == 0 {
		return nil
	}
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	buf := make([]byte, frameHeader+batchHdrLen+len(w.body))
	binary.LittleEndian.PutUint32(buf[0:], uint32(batchTag)<<28|uint32(batchHdrLen+len(w.body)))
	binary.LittleEndian.PutUint16(buf[frameHeader:], uint16(w.group))
	binary.LittleEndian.PutUint16(buf[frameHeader+2:], uint16(len(w.sizes)))
	copy(buf[frameHeader+batchHdrLen:], w.body)
	if err := w.writeLocked(buf); err != nil {
		return err
	}
	w.stats.countSendBatch(w.sizes, w.types)
	w.body = w.body[:0]
	w.sizes = w.sizes[:0]
	w.types = w.types[:0]
	return nil
}

// writeLocked performs the deadline-bounded single Write shared by both wire
// versions, injecting the simulated one-way latency once per frame (batching
// amortizes the WAN round trip exactly as it amortizes headers). A failed
// write latches the error and closes the connection so the peer's reader and
// the fault-tolerance layer take over.
func (w *frameWriter) writeLocked(buf []byte) error {
	if w.latency > 0 {
		time.Sleep(w.latency)
	}
	if w.timeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		defer w.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := w.conn.Write(buf); err != nil {
		w.err = err
		// The error is sticky: no flush will ever write again, so an armed
		// MaxDelay timer has nothing left to do. Disarm it here rather than
		// letting it fire into a dead writer.
		if w.timer != nil {
			w.timer.Stop()
			w.timer = nil
		}
		w.conn.Close()
		return err
	}
	return nil
}
