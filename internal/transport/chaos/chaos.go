// Package chaos wraps net.Conn with deterministic fault injection for
// protocol-under-fault testing: message delay, drop, duplication, mid-frame
// truncation, and hard disconnects, configurable per direction and driven by
// a seeded RNG so a failing schedule replays exactly.
//
// The transport layer writes each frame with a single Write call, so a
// write-side fault acts on a whole frame: a drop silently discards one
// message, a duplicate delivers it twice, a truncation delivers a prefix and
// kills the connection mid-frame. Read-side faults act on the raw byte
// stream and may desynchronize framing — exactly the corruption a flaky
// link produces — which the endpoints must survive by recycling the
// connection and rejoining.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is returned by operations that a fault turned into a
// disconnect.
var ErrInjected = errors.New("chaos: injected connection failure")

// FaultRates holds per-operation fault probabilities for one direction. At
// most one fault fires per operation; the probabilities are evaluated
// cumulatively, so their sum must be ≤ 1.
type FaultRates struct {
	// Delay sleeps a random duration up to Config.MaxDelay.
	Delay float64
	// Drop (write): pretend success, deliver nothing — one whole frame
	// vanishes. Drop (read): discard the bytes read, desynchronizing the
	// stream until the connection is recycled.
	Drop float64
	// Duplicate (write): deliver the frame twice. Duplicate (read): replay
	// the bytes just read on the next read.
	Duplicate float64
	// Truncate delivers a prefix of the data and hard-closes the connection
	// — the mid-frame cut a dying link produces.
	Truncate float64
	// Disconnect hard-closes the connection.
	Disconnect float64
}

// Config configures a fault-injecting connection or dialer.
type Config struct {
	// Seed drives every fault decision; the same seed over the same
	// operation sequence yields the same fault schedule.
	Seed int64
	// MaxDelay bounds injected delays (default 20ms).
	MaxDelay time.Duration
	// Read and Write configure per-direction fault rates.
	Read, Write FaultRates
}

// Stats counts injected faults; aggregated per Dialer across all its
// connections, or per standalone Conn.
type Stats struct {
	Delays      atomic.Int64
	Drops       atomic.Int64
	Duplicates  atomic.Int64
	Truncations atomic.Int64
	Disconnects atomic.Int64
}

// Total returns the total number of injected faults.
func (s *Stats) Total() int64 {
	return s.Delays.Load() + s.Drops.Load() + s.Duplicates.Load() +
		s.Truncations.Load() + s.Disconnects.Load()
}

type fault int

const (
	faultNone fault = iota
	faultDelay
	faultDrop
	faultDuplicate
	faultTruncate
	faultDisconnect
)

// Conn is a net.Conn that injects faults. Wrap an established connection
// with Wrap, or let a Dialer produce them.
type Conn struct {
	net.Conn

	mu      sync.Mutex // guards rng and replay
	rng     *rand.Rand
	replay  []byte // read bytes scheduled for duplication
	cfg     Config
	enabled *atomic.Bool // shared kill switch; nil = always enabled
	stats   *Stats
}

// Wrap returns a fault-injecting wrapper around conn. The connection owns a
// private Stats; use a Dialer to aggregate across connections.
func Wrap(conn net.Conn, cfg Config) *Conn {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &Conn{
		Conn:  conn,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		stats: &Stats{},
	}
}

// Stats exposes the fault counters backing this connection.
func (c *Conn) Stats() *Stats { return c.stats }

// pick draws at most one fault for this operation. delay is returned
// separately so the sleep can happen outside the RNG lock.
func (c *Conn) pick(r FaultRates) (fault, time.Duration, int64) {
	if c.enabled != nil && !c.enabled.Load() {
		return faultNone, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.rng.Float64()
	cut := c.rng.Int63() // consumed always, so schedules stay aligned
	var delay time.Duration
	if c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay) + 1))
	}
	switch {
	case p < r.Disconnect:
		return faultDisconnect, 0, cut
	case p < r.Disconnect+r.Truncate:
		return faultTruncate, 0, cut
	case p < r.Disconnect+r.Truncate+r.Drop:
		return faultDrop, 0, cut
	case p < r.Disconnect+r.Truncate+r.Drop+r.Duplicate:
		return faultDuplicate, 0, cut
	case p < r.Disconnect+r.Truncate+r.Drop+r.Duplicate+r.Delay:
		return faultDelay, delay, cut
	}
	return faultNone, 0, cut
}

// Write injects write-direction faults. The transport writes one frame per
// call, so frame-level semantics (drop/duplicate a whole message) emerge
// naturally.
func (c *Conn) Write(p []byte) (int, error) {
	f, delay, cut := c.pick(c.cfg.Write)
	switch f {
	case faultDisconnect:
		c.stats.Disconnects.Add(1)
		c.Conn.Close()
		return 0, ErrInjected
	case faultTruncate:
		c.stats.Truncations.Add(1)
		k := 0
		if len(p) > 0 {
			k = int(cut % int64(len(p)))
		}
		c.Conn.Write(p[:k])
		c.Conn.Close()
		return k, ErrInjected
	case faultDrop:
		c.stats.Drops.Add(1)
		return len(p), nil
	case faultDuplicate:
		c.stats.Duplicates.Add(1)
		n, err := c.Conn.Write(p)
		if err != nil {
			return n, err
		}
		c.Conn.Write(p) // best effort; the peer sees the frame twice
		return n, nil
	case faultDelay:
		c.stats.Delays.Add(1)
		time.Sleep(delay)
	}
	return c.Conn.Write(p)
}

// Read injects read-direction faults on the raw byte stream.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if len(c.replay) > 0 {
		n := copy(p, c.replay)
		c.replay = c.replay[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()

	f, delay, cut := c.pick(c.cfg.Read)
	switch f {
	case faultDisconnect:
		c.stats.Disconnects.Add(1)
		c.Conn.Close()
		return 0, ErrInjected
	case faultTruncate:
		c.stats.Truncations.Add(1)
		n, err := c.Conn.Read(p)
		if err != nil {
			return n, err
		}
		k := 0
		if n > 0 {
			k = int(cut % int64(n))
		}
		c.Conn.Close()
		return k, ErrInjected
	case faultDrop:
		c.stats.Drops.Add(1)
		// Swallow one chunk of the stream, then serve the next one.
		if _, err := c.Conn.Read(p); err != nil {
			return 0, err
		}
		return c.Conn.Read(p)
	case faultDuplicate:
		c.stats.Duplicates.Add(1)
		n, err := c.Conn.Read(p)
		if err != nil {
			return n, err
		}
		c.mu.Lock()
		c.replay = append(c.replay, p[:n]...)
		c.mu.Unlock()
		return n, nil
	case faultDelay:
		c.stats.Delays.Add(1)
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

// Kill hard-closes the underlying connection, bypassing probabilities —
// for schedules that must disconnect at a deterministic point.
func (c *Conn) Kill() {
	c.stats.Disconnects.Add(1)
	c.Conn.Close()
}

// Dialer produces fault-injecting connections for transport.Options.Dial.
// Each connection gets an RNG seeded from the dialer's master seed, so the
// schedule across reconnections is reproducible. All connections share the
// dialer's Stats and its enable switch.
type Dialer struct {
	cfg     Config
	enabled atomic.Bool
	mu      sync.Mutex
	seeds   *rand.Rand
	Stats   Stats
}

// NewDialer returns an enabled Dialer for cfg.
func NewDialer(cfg Config) *Dialer {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	d := &Dialer{cfg: cfg, seeds: rand.New(rand.NewSource(cfg.Seed))}
	d.enabled.Store(true)
	return d
}

// SetEnabled toggles fault injection on every connection this dialer has
// produced or will produce. Disabled connections pass bytes through
// untouched (and draw nothing from their RNGs).
func (d *Dialer) SetEnabled(on bool) { d.enabled.Store(on) }

// Dial connects like net.DialTimeout and wraps the result.
func (d *Dialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	seed := d.seeds.Int63()
	d.mu.Unlock()
	cfg := d.cfg
	cfg.Seed = seed
	cc := Wrap(conn, cfg)
	cc.enabled = &d.enabled
	cc.stats = &d.Stats
	return cc, nil
}
