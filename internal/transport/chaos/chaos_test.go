package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns the two ends of an in-memory connection.
func pipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// faultSchedule replays n write decisions for a config and returns which
// fault fired at each step (without touching a real connection).
func faultSchedule(cfg Config, n int) []fault {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)
	c := Wrap(a, cfg)
	out := make([]fault, n)
	for i := range out {
		f, _, _ := c.pick(cfg.Write)
		out[i] = f
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{
		Seed:     42,
		MaxDelay: time.Millisecond,
		Write:    FaultRates{Delay: 0.2, Drop: 0.1, Duplicate: 0.1, Truncate: 0.05, Disconnect: 0.05},
	}
	s1 := faultSchedule(cfg, 500)
	s2 := faultSchedule(cfg, 500)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedules diverge at step %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	cfg.Seed = 43
	s3 := faultSchedule(cfg, 500)
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 500-step schedules")
	}
}

func TestWriteDropDeliversNothing(t *testing.T) {
	a, b := pipe(t)
	c := Wrap(a, Config{Seed: 1, Write: FaultRates{Drop: 1}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		var buf [8]byte
		if n, err := b.Read(buf[:]); err == nil {
			t.Errorf("dropped write still delivered %d bytes", n)
		}
	}()
	if n, err := c.Write([]byte("payload")); err != nil || n != 7 {
		t.Fatalf("drop must report success, got n=%d err=%v", n, err)
	}
	<-done
	if c.Stats().Drops.Load() != 1 {
		t.Fatalf("drop not counted: %+v", c.Stats().Drops.Load())
	}
}

func TestWriteDuplicateDeliversTwice(t *testing.T) {
	a, b := pipe(t)
	c := Wrap(a, Config{Seed: 1, Write: FaultRates{Duplicate: 1}})
	msg := []byte("frame!")
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 2*len(msg))
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Errorf("reading duplicated frame: %v", err)
		}
		got <- buf
	}()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := <-got
	if !bytes.Equal(buf, append(append([]byte{}, msg...), msg...)) {
		t.Fatalf("expected frame twice, got %q", buf)
	}
}

func TestWriteTruncateCutsAndCloses(t *testing.T) {
	a, b := pipe(t)
	c := Wrap(a, Config{Seed: 1, Write: FaultRates{Truncate: 1}})
	msg := []byte("a-frame-that-will-be-cut")
	go func() {
		n, err := c.Write(msg)
		if !errors.Is(err, ErrInjected) {
			t.Errorf("truncate must fail the write, got n=%d err=%v", n, err)
		}
		if n >= len(msg) {
			t.Errorf("truncate delivered the whole frame (%d bytes)", n)
		}
	}()
	buf, _ := io.ReadAll(b) // ends when the injected close lands
	if len(buf) >= len(msg) {
		t.Fatalf("peer received %d bytes of a %d-byte truncated frame", len(buf), len(msg))
	}
	if c.Stats().Truncations.Load() != 1 {
		t.Fatal("truncation not counted")
	}
}

func TestDisconnectClosesBothWays(t *testing.T) {
	a, b := pipe(t)
	c := Wrap(a, Config{Seed: 1, Write: FaultRates{Disconnect: 1}})
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("expected injected disconnect, got %v", err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	var buf [1]byte
	if _, err := b.Read(buf[:]); err == nil {
		t.Fatal("peer read succeeded after injected disconnect")
	}
}

func TestReadDuplicateReplaysBytes(t *testing.T) {
	a, b := pipe(t)
	c := Wrap(a, Config{Seed: 1, Read: FaultRates{Duplicate: 1}})
	go b.Write([]byte("dup"))
	buf := make([]byte, 3)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	// Injection disabled for the replayed read: replay is served first.
	c.cfg.Read = FaultRates{}
	buf2 := make([]byte, 3)
	if _, err := io.ReadFull(c, buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("replayed bytes differ: %q vs %q", buf, buf2)
	}
}

func TestDisabledDialerPassesThrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoDone := make(chan struct{})
	go func() {
		defer close(echoDone)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn)
	}()

	d := NewDialer(Config{Seed: 7, Write: FaultRates{Drop: 1}})
	d.SetEnabled(false)
	conn, err := d.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("disabled chaos conn must behave like a plain conn: %v", err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo mismatch: %q", buf)
	}
	if d.Stats.Total() != 0 {
		t.Fatalf("disabled dialer still injected %d faults", d.Stats.Total())
	}
}
