package transport

// Multi-tenancy suite: several monitoring groups share one listener, one
// accept loop, and one metrics registry. The tests pin tenant routing,
// per-group metric labeling, hostile-registration containment, and — the
// strongest property — bit-identical isolation: chaos in one group must not
// perturb another group's estimates or traffic by a single bit.

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
)

// groupSpec describes one tenant for startMultiCluster.
type groupSpec struct {
	gid     GroupID
	f       *core.Function
	cfg     core.Config
	initial [][]float64
}

// startMultiCluster brings up one MultiCoordinator hosting every spec'd
// group, dials that group's nodes, and waits for all groups to become ready.
func startMultiCluster(t *testing.T, opts Options, specs []groupSpec) (*MultiCoordinator, map[GroupID][]*NodeClient) {
	t.Helper()
	mc, err := ListenMulti("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	coords := make(map[GroupID]*Coordinator, len(specs))
	for _, sp := range specs {
		c, err := mc.AddGroup(sp.gid, sp.f, len(sp.initial), sp.cfg)
		if err != nil {
			t.Fatal(err)
		}
		coords[sp.gid] = c
	}
	nodes := make(map[GroupID][]*NodeClient, len(specs))
	for _, sp := range specs {
		nodeOpts := opts
		nodeOpts.Group = sp.gid
		for i, x := range sp.initial {
			nd, err := DialNode(mc.Addr(), i, sp.f, x, nodeOpts)
			if err != nil {
				t.Fatal(err)
			}
			nodes[sp.gid] = append(nodes[sp.gid], nd)
		}
	}
	for gid, c := range coords {
		select {
		case <-c.Ready():
		case <-time.After(10 * time.Second):
			t.Fatalf("group %d never became ready", gid)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("group %d: %v", gid, err)
		}
		for i, nd := range nodes[gid] {
			if err := nd.WaitReady(10 * time.Second); err != nil {
				t.Fatalf("group %d node %d: %v", gid, i, err)
			}
		}
	}
	return mc, nodes
}

func closeMultiCluster(mc *MultiCoordinator, nodes map[GroupID][]*NodeClient) {
	for _, nds := range nodes {
		for _, nd := range nds {
			nd.Close()
		}
	}
	mc.Close()
}

// TestMultiGroupIndependentMonitoring runs three tenants with different
// functions, dimensions, and populations over a single listener. Each group's
// estimate must track its own ground truth, and the shared registry must
// carry every group's counters under distinct group labels.
func TestMultiGroupIndependentMonitoring(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	opts := Options{Metrics: reg}
	specs := []groupSpec{
		{gid: 0, f: funcs.InnerProduct(2), cfg: core.Config{Epsilon: 0.2},
			initial: [][]float64{{0.5, 0.5, 1, 1}, {0.5, 0.5, 1, 1}, {0.5, 0.5, 1, 1}}},
		{gid: 1, f: funcs.SqNorm(2), cfg: core.Config{Epsilon: 0.3},
			initial: [][]float64{{1, 0}, {1, 0}}},
		{gid: 5, f: funcs.Variance(), cfg: core.Config{Epsilon: 0.1},
			initial: [][]float64{funcs.AugmentSquares(1), funcs.AugmentSquares(1)}},
	}
	mc, nodes := startMultiCluster(t, opts, specs)
	defer closeMultiCluster(mc, nodes)

	// Drive each group through a distinct drift, sequentially per group so
	// each group's truth is exact at the end.
	for step := 1; step <= 15; step++ {
		u := 0.5 + 0.05*float64(step)
		for _, nd := range nodes[0] {
			if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
				t.Fatalf("group 0: %v", err)
			}
		}
		v := 1 + 0.1*float64(step)
		for _, nd := range nodes[1] {
			if err := nd.Update([]float64{v, 0}); err != nil {
				t.Fatalf("group 1: %v", err)
			}
		}
	}
	// Group 5 splits its population to build real variance.
	if err := nodes[5][0].Update(funcs.AugmentSquares(0)); err != nil {
		t.Fatalf("group 5: %v", err)
	}
	if err := nodes[5][1].Update(funcs.AugmentSquares(2)); err != nil {
		t.Fatalf("group 5: %v", err)
	}
	for gid, nds := range nodes {
		waitQuiesce(mc.Group(gid), nds)
	}

	type want struct {
		truth, eps float64
	}
	wants := map[GroupID]want{
		0: {truth: 2 * (0.5 + 0.05*15), eps: 0.2}, // ⟨(u,u),(1,1)⟩ = 2u
		1: {truth: (1 + 0.1*15) * (1 + 0.1*15), eps: 0.3},
		5: {truth: 1, eps: 0.1}, // values {0,2}: E[v²]−E[v]² = 2−1
	}
	for gid, w := range wants {
		c := mc.Group(gid)
		if err := c.Err(); err != nil {
			t.Fatalf("group %d died: %v", gid, err)
		}
		if got := c.Estimate(); math.Abs(got-w.truth) > w.eps+1e-9 {
			t.Fatalf("group %d estimate %v, want within ε=%v of %v", gid, got, w.eps, w.truth)
		}
	}

	// The shared registry must expose per-group labeled series for both the
	// protocol counters and the transport counters.
	snap := reg.Snapshot()
	for _, gid := range []GroupID{0, 1, 5} {
		coordKey := fmt.Sprintf(`automon_coordinator_full_syncs_total{group="%d"}`, gid)
		if _, ok := snap[coordKey]; !ok {
			t.Errorf("registry missing %s", coordKey)
		}
		wireKey := fmt.Sprintf(`automon_transport_messages_total{dir="sent",side="coordinator",group="%d"}`, gid)
		if _, ok := snap[wireKey]; !ok {
			t.Errorf("registry missing %s", wireKey)
		}
	}
	// Registration traffic lands on the shared pending-side counters.
	if _, ok := snap[`automon_transport_messages_total{dir="recv",side="coordinator",group="pending"}`]; !ok {
		t.Error("registry missing pending-side registration counters")
	}

	// Per-group accounting identities hold on every endpoint.
	for gid, nds := range nodes {
		checkStatsIdentity(t, fmt.Sprintf("group %d coordinator", gid), &mc.Group(gid).Stats)
		for i, nd := range nds {
			checkStatsIdentity(t, fmt.Sprintf("group %d node %d", gid, i), &nd.Stats)
		}
	}

	closeMultiCluster(mc, nodes)
	checkNoGoroutineLeak(t, baseline)
}

// TestMultiGroupUnknownGroupRejected pins tenant containment: a registration
// naming a group the server doesn't host is rejected and counted, while every
// hosted group keeps running — hostile peers must not be fatal in multi mode.
func TestMultiGroupUnknownGroupRejected(t *testing.T) {
	f := funcs.InnerProduct(1)
	mc, err := ListenMulti("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	c, err := mc.AddGroup(1, f, 1, core.Config{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := DialNode(mc.Addr(), 0, f, []float64{1, 1}, Options{Group: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// A stranger registers for a group that doesn't exist.
	strayOpts := Options{Group: 99, MaxReconnectAttempts: 1, ReconnectBase: time.Millisecond}
	stray, err := DialNode(mc.Addr(), 0, f, []float64{0, 0}, strayOpts)
	if err == nil {
		defer stray.Close()
	}
	waitFor(t, 10*time.Second, "stray registration to be rejected", func() bool {
		return mc.RejectedRegistrations() >= 1
	})
	if err := mc.Err(); err != nil {
		t.Fatalf("hostile registration killed the server: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("hostile registration killed group 1: %v", err)
	}
	// The hosted group still monitors.
	if err := nd.Update([]float64{2, 2}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiGroupDuplicateAndBadIDs pins registry hygiene: re-adding a gid
// fails, out-of-range gids fail, and AddGroup on a single-mode server fails.
func TestMultiGroupDuplicateAndBadIDs(t *testing.T) {
	f := funcs.InnerProduct(1)
	mc, err := ListenMulti("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if _, err := mc.AddGroup(3, f, 1, core.Config{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.AddGroup(3, f, 1, core.Config{Epsilon: 0.1}); err == nil {
		t.Fatal("duplicate group id accepted")
	}
	if _, err := mc.AddGroup(MaxGroups, f, 1, core.Config{Epsilon: 0.1}); err == nil {
		t.Fatal("out-of-range group id accepted")
	}
	if _, err := mc.AddGroup(2, f, 0, core.Config{Epsilon: 0.1}); err == nil {
		t.Fatal("empty group accepted")
	}

	coord, err := ListenCoordinator("127.0.0.1:0", f, 1, core.Config{Epsilon: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.srv.AddGroup(1, f, 1, core.Config{Epsilon: 0.1}); err == nil {
		t.Fatal("AddGroup on a single-group server accepted")
	}
}

// quiesceFast is a tighter waitQuiesce for the lockstep schedule below.
func quiesceFast(c *Coordinator, nds []*NodeClient) {
	stable, last := 0, int64(-1)
	for stable < 3 {
		time.Sleep(10 * time.Millisecond)
		cur := c.Stats.MessagesSent.Load() + c.Stats.MessagesReceived.Load()
		for _, nd := range nds {
			cur += nd.Stats.MessagesSent.Load() + nd.Stats.MessagesReceived.Load()
		}
		if cur == last {
			stable++
		} else {
			stable = 0
		}
		last = cur
	}
}

// victimRound runs one lockstep round of the victim group's schedule and
// returns the coordinator estimate after the group quiesces. The group is
// quiesced after every single update: a resolution's trailing Slack/Sync
// deliveries race with the next node's violation check, so per-update
// barriers are what make the message history — not just the estimates —
// deterministic enough to compare bit-for-bit across runs.
func victimRound(t *testing.T, c *Coordinator, nds []*NodeClient, round int) float64 {
	t.Helper()
	u := 0.5 + 0.05*float64(round)
	for i, nd := range nds {
		if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
			t.Fatalf("victim node %d round %d: %v", i, round, err)
		}
		quiesceFast(c, nds)
	}
	return c.Estimate()
}

// runVictimSchedule plays the full deterministic schedule against group gid
// of mc and returns the per-round estimates and final traffic counters.
func runVictimSchedule(t *testing.T, mc *MultiCoordinator, gid GroupID, nds []*NodeClient, rounds int) ([]float64, [4]int64) {
	t.Helper()
	c := mc.Group(gid)
	estimates := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		estimates[r] = victimRound(t, c, nds, r+1)
	}
	return estimates, [4]int64{
		c.Stats.MessagesSent.Load(),
		c.Stats.MessagesReceived.Load(),
		c.Stats.PayloadSent.Load(),
		c.Stats.PayloadReceived.Load(),
	}
}

// TestMultiGroupChaosIsolation is the isolation acceptance test: group 1
// (the victim) plays a fixed lockstep schedule while every node of group 2
// (the storm) is repeatedly killed and rejoins. The victim's per-round
// estimates and its total message/payload traffic must be bit-identical to a
// solo run of the same schedule on a server hosting only the victim.
func TestMultiGroupChaosIsolation(t *testing.T) {
	const rounds, n = 10, 3
	victimSpec := func() groupSpec {
		return groupSpec{gid: 1, f: funcs.InnerProduct(2), cfg: core.Config{Epsilon: 0.2},
			initial: [][]float64{{0.5, 0.5, 1, 1}, {0.5, 0.5, 1, 1}, {0.5, 0.5, 1, 1}}}
	}

	// Reference: the victim alone.
	soloMC, soloNodes := startMultiCluster(t, Options{}, []groupSpec{victimSpec()})
	soloEst, soloTraffic := runVictimSchedule(t, soloMC, 1, soloNodes[1], rounds)
	closeMultiCluster(soloMC, soloNodes)

	// Combined: victim plus a storm group whose nodes die and rejoin
	// continuously while the victim plays the same schedule.
	stormSpec := groupSpec{gid: 2, f: funcs.SqNorm(2), cfg: core.Config{Epsilon: 0.05},
		initial: [][]float64{{1, 1}, {1, 1}}}
	opts := Options{ReconnectBase: time.Millisecond, MaxReconnectAttempts: 50}
	mc, nodes := startMultiCluster(t, opts, []groupSpec{victimSpec(), stormSpec})
	defer closeMultiCluster(mc, nodes)

	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		step := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			step++
			for i, nd := range nodes[2] {
				v := 1 + 0.3*float64(step%7)
				if err := nd.Update([]float64{v, v}); err != nil {
					if perm := nd.Err(); perm != nil {
						t.Errorf("storm node %d failed permanently: %v", i, perm)
						return
					}
				}
				// Kill every storm node's connection every few steps.
				if step%3 == i {
					before := nd.Reconnects()
					nd.DropConnection()
					deadline := time.Now().Add(10 * time.Second)
					for nd.Reconnects() <= before && time.Now().Before(deadline) {
						time.Sleep(time.Millisecond)
					}
				}
			}
		}
	}()

	chaosEst, chaosTraffic := runVictimSchedule(t, mc, 1, nodes[1], rounds)
	close(stop)
	<-stormDone

	// Estimates must match bit for bit, round for round.
	for r := 0; r < rounds; r++ {
		if math.Float64bits(chaosEst[r]) != math.Float64bits(soloEst[r]) {
			t.Errorf("round %d: estimate under chaos %v (bits %#x) != solo %v (bits %#x)",
				r+1, chaosEst[r], math.Float64bits(chaosEst[r]), soloEst[r], math.Float64bits(soloEst[r]))
		}
	}
	// And the victim's traffic must be untouched by the neighbor's storm.
	if chaosTraffic != soloTraffic {
		t.Errorf("victim traffic perturbed by neighboring chaos: chaos=%v solo=%v",
			chaosTraffic, soloTraffic)
	}
	// Sanity: the storm actually stormed.
	var reconnects int64
	for _, nd := range nodes[2] {
		reconnects += nd.Reconnects()
	}
	if reconnects == 0 {
		t.Fatal("storm group never lost a connection; isolation was not exercised")
	}
	if err := mc.Group(1).Err(); err != nil {
		t.Fatalf("victim group died: %v", err)
	}
}
