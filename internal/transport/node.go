package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"automon/internal/core"
)

// NodeClient runs one AutoMon node over a TCP connection to the coordinator.
// The application feeds local-vector updates through Update; the client
// transparently answers the coordinator's data requests, installs safe
// zones, and reports violations (blocking until the coordinator resolves
// them, matching the §3.7 assumption that data arrives slower than
// resolutions complete).
type NodeClient struct {
	ID    int
	Stats TrafficStats

	conn    net.Conn
	writeMu sync.Mutex
	opts    Options

	mu       sync.Mutex // guards node and reported
	node     *core.Node
	reported bool // a violation is outstanding; suppress duplicates
	resolved chan struct{}
	ready    chan struct{}
	readyOne sync.Once

	errMu  sync.Mutex
	err    error
	closed bool
	wg     sync.WaitGroup
}

// DialNode connects to the coordinator, registers node id with its initial
// local vector, and starts serving coordinator messages.
func DialNode(addr string, id int, f *core.Function, initial []float64, opts Options) (*NodeClient, error) {
	opts.defaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &NodeClient{
		ID:       id,
		conn:     conn,
		opts:     opts,
		node:     core.NewNode(id, f),
		resolved: make(chan struct{}, 1),
		ready:    make(chan struct{}),
	}
	c.node.SetData(initial)
	if err := writeFrame(conn, &core.DataResponse{NodeID: id, X: initial}, opts.Latency, &c.Stats, &c.writeMu); err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *NodeClient) readLoop() {
	defer c.wg.Done()
	for {
		m, err := readFrame(c.conn, &c.Stats)
		if err != nil {
			c.fail(err)
			return
		}
		switch msg := m.(type) {
		case *core.DataRequest:
			c.mu.Lock()
			x := c.node.LocalVector()
			c.mu.Unlock()
			if err := writeFrame(c.conn, &core.DataResponse{NodeID: c.ID, X: x}, c.opts.Latency, &c.Stats, &c.writeMu); err != nil {
				c.fail(err)
				return
			}
		case *core.Sync:
			c.mu.Lock()
			c.node.ApplySync(msg)
			c.reported = false // this resolution consumes the outstanding report
			c.mu.Unlock()
			c.readyOne.Do(func() { close(c.ready) })
			c.recheck()
			c.signalResolved()
		case *core.Slack:
			c.mu.Lock()
			c.node.ApplySlack(msg)
			c.reported = false
			c.mu.Unlock()
			c.recheck()
			c.signalResolved()
		default:
			c.fail(fmt.Errorf("transport: node %d received unexpected %v", c.ID, m.Type()))
			return
		}
	}
}

// recheck re-evaluates the local constraints right after a new zone or
// slack is installed and reports a fresh violation if they no longer hold.
// This covers a race the paper's data-rate assumption (§3.7) rules out:
// when data keeps flowing during a resolution, the coordinator may have
// balanced against a slightly stale local vector, leaving this node outside
// its zone with no pending data update to notice it.
// At most one violation report is outstanding at a time: duplicates for the
// same out-of-zone state would multiply through the resolution fan-out and
// flood the coordinator.
func (c *NodeClient) recheck() {
	c.mu.Lock()
	if c.reported {
		c.mu.Unlock()
		return
	}
	v := c.node.Check()
	if v != nil {
		c.reported = true
	}
	c.mu.Unlock()
	if v == nil {
		return
	}
	if err := writeFrame(c.conn, v, c.opts.Latency, &c.Stats, &c.writeMu); err != nil {
		c.fail(err)
	}
}

func (c *NodeClient) signalResolved() {
	select {
	case c.resolved <- struct{}{}:
	default:
	}
}

func (c *NodeClient) fail(err error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.signalResolved() // unblock any waiting Update
}

// WaitReady blocks until the node has installed its first safe zone (the
// initial full sync reached it) or the timeout expires. Call it after the
// coordinator reports Ready before streaming updates: until the first Sync
// arrives the node is silent by design, so updates pushed earlier are not
// monitored.
func (c *NodeClient) WaitReady(timeout time.Duration) error {
	select {
	case <-c.ready:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("transport: node %d never received its first sync", c.ID)
	}
}

// Err returns the first connection error, if any.
func (c *NodeClient) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Update installs a new local vector, checks the local constraints, and —
// if they are violated — reports to the coordinator and blocks until the
// violation is resolved (new slack or safe zone installed).
func (c *NodeClient) Update(x []float64) error {
	c.mu.Lock()
	// Drain a stale resolution signal so we wait for a fresh one.
	select {
	case <-c.resolved:
	default:
	}
	v := c.node.UpdateData(x)
	send := v != nil && !c.reported
	if send {
		c.reported = true
	}
	c.mu.Unlock()
	if v == nil {
		return c.Err()
	}
	if send {
		if err := writeFrame(c.conn, v, c.opts.Latency, &c.Stats, &c.writeMu); err != nil {
			return err
		}
	}
	// Resolution signals are not addressed to a specific violation (a sync
	// triggered by another node's violation also lands here), so wait until
	// this node's constraints actually hold again.
	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-c.resolved:
		case <-deadline:
			return fmt.Errorf("transport: node %d violation resolution timed out", c.ID)
		}
		if err := c.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		still := c.node.Check()
		c.mu.Unlock()
		if still == nil {
			return nil
		}
	}
}

// CurrentValue returns the node's current estimate f(x0).
func (c *NodeClient) CurrentValue() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node.CurrentValue()
}

// Close tears down the connection.
func (c *NodeClient) Close() {
	c.errMu.Lock()
	c.closed = true
	c.errMu.Unlock()
	c.conn.Close()
	c.wg.Wait()
}
