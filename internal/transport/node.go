package transport

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"automon/internal/core"
	"automon/internal/linalg"
	"automon/internal/obs"
)

// NodeClient runs one AutoMon node over a TCP connection to the coordinator.
// The application feeds local-vector updates through Update; the client
// transparently answers the coordinator's data requests, installs safe
// zones, and reports violations (blocking until the coordinator resolves
// them, matching the §3.7 assumption that data arrives slower than
// resolutions complete).
//
// Connection losses are survivable: the client reconnects with exponentially
// backed-off, jittered retries, re-registers through a Rejoin message, and
// receives a fresh full-sync state from the coordinator. Only exhausting
// MaxReconnectAttempts (or Close) ends the client; Err then reports the
// cause and WaitReady/Update unblock immediately.
type NodeClient struct {
	ID    int
	Stats TrafficStats

	addr string
	opts Options
	v2   bool // frames carry the group tag (wire v2)

	stateMu sync.Mutex // guards conn, w, err, closed
	conn    net.Conn
	w       *frameWriter
	err     error
	closed  bool

	mu       sync.Mutex // guards node, latest and reported
	node     *core.Node
	reported bool // a violation is outstanding; suppress duplicates
	// latest is the application's most recent local vector (set once
	// EnableElision succeeds). Between exact checks the node's own vector is
	// stale by design, so data pulls, rechecks and rejoins materialize latest
	// into the node first.
	latest []float64
	// elided counts UpdateElided calls whose exact check the budget skipped.
	elided   int64
	resolved chan struct{}
	ready    chan struct{}
	readyOne sync.Once

	failed     chan struct{} // closed on permanent failure
	failedOnce sync.Once
	closeCh    chan struct{}
	closeOnce  sync.Once

	reconnects     *obs.Counter   // successful rejoins after a connection loss
	reconnectTries *obs.Counter   // dial attempts made by the reconnect loop
	backoffWait    *obs.Histogram // jittered backoff sleeps, in seconds
	tracer         *obs.Tracer

	rng *rand.Rand // backoff jitter; used only by the run goroutine
	wg  sync.WaitGroup
}

// DialNode connects to the coordinator, registers node id with its initial
// local vector, and starts serving coordinator messages. A non-zero
// Options.Group (or enabled batching) upgrades the client to wire v2 so its
// frames carry the group tag; the coordinator answers in the same version.
func DialNode(addr string, id int, f *core.Function, initial []float64, opts Options) (*NodeClient, error) {
	opts.defaults()
	conn, err := opts.Dial("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	seed := opts.ReconnectSeed
	if seed == 0 {
		seed = int64(id) + 1
	}
	c := &NodeClient{
		ID:       id,
		addr:     addr,
		conn:     conn,
		opts:     opts,
		v2:       opts.Group != 0 || opts.Batch.enabled(),
		node:     core.NewNode(id, f),
		resolved: make(chan struct{}, 1),
		ready:    make(chan struct{}),
		failed:   make(chan struct{}),
		closeCh:  make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
	}
	c.w = newFrameWriter(conn, opts.Group, c.v2, opts, &c.Stats)
	nodeLabel := fmt.Sprintf(`node="%d"`, id)
	if opts.Group != 0 {
		nodeLabel = fmt.Sprintf(`node="%d",group="%d"`, id, opts.Group)
	}
	c.Stats.Bind(opts.Metrics, `side="node",`+nodeLabel, opts.Tracer, id)
	c.tracer = opts.Tracer
	c.reconnects = counterOr(opts.Metrics,
		fmt.Sprintf("automon_transport_reconnects_total{%s}", nodeLabel),
		"Successful rejoins after a connection loss.")
	c.reconnectTries = counterOr(opts.Metrics,
		fmt.Sprintf("automon_transport_reconnect_attempts_total{%s}", nodeLabel),
		"Dial attempts made by the reconnect loop.")
	c.backoffWait = histogramOr(opts.Metrics,
		fmt.Sprintf("automon_transport_backoff_seconds{%s}", nodeLabel),
		"Jittered reconnect backoff sleeps.",
		[]float64{0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 5})
	c.node.SetData(initial)
	if err := c.w.writeMsg(&core.DataResponse{NodeID: id, X: initial}, true); err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// run owns the connection lifecycle: serve the current connection until it
// dies, then reconnect and rejoin, until Close or the retry budget runs out.
func (c *NodeClient) run() {
	defer c.wg.Done()
	for {
		cause := c.serve()
		if c.isClosed() {
			return
		}
		if err := c.reconnect(cause); err != nil {
			c.fail(err)
			return
		}
	}
}

// currentConn snapshots the active connection (nil after Close).
func (c *NodeClient) currentConn() net.Conn {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.conn
}

// currentWriter snapshots the active connection's frame writer (nil after
// Close).
func (c *NodeClient) currentWriter() *frameWriter {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.w
}

// setConn installs a fresh connection and its writer; returns false if the
// client was closed while dialing (the connection is then discarded).
func (c *NodeClient) setConn(conn net.Conn, w *frameWriter) bool {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		conn.Close()
		return false
	}
	c.conn = conn
	c.w = w
	c.stateMu.Unlock()
	return true
}

func (c *NodeClient) isClosed() bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.closed
}

// send writes one message on the current connection. Node messages are
// always urgent — the coordinator is actively waiting on each of them (a
// data response completes a pull, a violation blocks in Update) — so they
// flush immediately rather than coalescing. On failure the writer has
// closed the connection, so the run loop notices and recycles it; the
// message itself is not retried — the post-rejoin full sync restores
// consistency.
func (c *NodeClient) send(m core.Message) error {
	w := c.currentWriter()
	if w == nil {
		return errNotConnected
	}
	return w.writeMsg(m, true)
}

// serve reads coordinator messages on the current connection until it dies.
func (c *NodeClient) serve() error {
	conn := c.currentConn()
	if conn == nil {
		return errNotConnected
	}
	for {
		fb, err := readAnyFrame(conn, 0, &c.Stats)
		if err != nil {
			conn.Close()
			return err
		}
		if fb.v2 && fb.group != c.opts.Group {
			// A frame for another group on this connection means the stream
			// is misrouted; recycle the connection rather than dying.
			conn.Close()
			return fmt.Errorf("transport: node %d received frame for group %d", c.ID, fb.group)
		}
		for _, m := range fb.msgs {
			if err := c.handleMsg(conn, m); err != nil {
				return err
			}
		}
	}
}

// handleMsg processes one coordinator message.
func (c *NodeClient) handleMsg(conn net.Conn, m core.Message) error {
	switch msg := m.(type) {
	case *core.DataRequest:
		c.mu.Lock()
		c.materializeLocked()
		x := c.node.LocalVector()
		c.mu.Unlock()
		// A failed reply closes the connection; the frame read loop will
		// surface it on the next iteration.
		//automon:allow erreig best-effort send: a failed frame is recovered by the reconnect/full-sync path, not the caller
		_ = c.send(&core.DataResponse{NodeID: c.ID, X: x})
	case *core.Sync:
		c.mu.Lock()
		c.node.ApplySync(msg)
		c.reported = false // this resolution consumes the outstanding report
		c.mu.Unlock()
		c.readyOne.Do(func() { close(c.ready) })
		c.recheck()
		c.signalResolved()
	case *core.Slack:
		c.mu.Lock()
		c.node.ApplySlack(msg)
		c.reported = false
		c.mu.Unlock()
		c.recheck()
		c.signalResolved()
	default:
		// A corrupt or misrouted stream; recycle the connection rather
		// than dying — the rejoin full sync re-establishes a clean state.
		conn.Close()
		return fmt.Errorf("transport: node %d received unexpected %v", c.ID, m.Type())
	}
	return nil
}

// reconnect re-establishes the coordinator connection with exponential
// backoff and jitter, re-registering through a Rejoin carrying the current
// local vector. cause is the connection error that triggered it.
func (c *NodeClient) reconnect(cause error) error {
	if c.opts.MaxReconnectAttempts < 0 {
		return cause
	}
	backoff := c.opts.ReconnectBase
	for attempt := 1; attempt <= c.opts.MaxReconnectAttempts; attempt++ {
		// Jitter uniformly over [backoff/2, backoff] so a herd of nodes
		// killed by the same fault does not reconnect in lockstep.
		d := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		c.backoffWait.Observe(d.Seconds())
		select {
		case <-c.closeCh:
			return cause
		case <-time.After(d):
		}
		c.reconnectTries.Inc()
		c.tracer.Record(obs.EventReconnectTry, c.ID, float64(attempt), "")
		conn, err := c.opts.Dial("tcp", c.addr, c.opts.DialTimeout)
		if err == nil {
			c.mu.Lock()
			c.materializeLocked()
			x := c.node.LocalVector()
			// Any outstanding report died with the old connection; the
			// rejoin full sync re-evaluates the constraints from scratch.
			c.reported = false
			c.mu.Unlock()
			w := newFrameWriter(conn, c.opts.Group, c.v2, c.opts, &c.Stats)
			err = w.writeMsg(&core.Rejoin{NodeID: c.ID, X: x}, true)
			if err == nil {
				if !c.setConn(conn, w) {
					return cause
				}
				c.reconnects.Inc()
				c.tracer.Record(obs.EventReconnected, c.ID, float64(attempt), "")
				return nil
			}
			conn.Close()
		}
		if backoff < c.opts.ReconnectMax {
			backoff *= 2
			if backoff > c.opts.ReconnectMax {
				backoff = c.opts.ReconnectMax
			}
		}
	}
	c.tracer.Record(obs.EventReconnectFailed, c.ID, float64(c.opts.MaxReconnectAttempts), "")
	return fmt.Errorf("transport: node %d gave up after %d reconnect attempts: %w",
		c.ID, c.opts.MaxReconnectAttempts, cause)
}

// Reconnects returns how many times the client has successfully rejoined
// after a connection loss.
func (c *NodeClient) Reconnects() int64 { return c.reconnects.Load() }

// DropConnection forcibly closes the current connection, as a network fault
// would. The client reconnects and rejoins through its normal recovery path;
// chaos tests use it to schedule deterministic node kills.
func (c *NodeClient) DropConnection() {
	if conn := c.currentConn(); conn != nil {
		conn.Close()
	}
}

// recheck re-evaluates the local constraints right after a new zone or
// slack is installed and reports a fresh violation if they no longer hold.
// This covers a race the paper's data-rate assumption (§3.7) rules out:
// when data keeps flowing during a resolution, the coordinator may have
// balanced against a slightly stale local vector, leaving this node outside
// its zone with no pending data update to notice it.
// At most one violation report is outstanding at a time: duplicates for the
// same out-of-zone state would multiply through the resolution fan-out and
// flood the coordinator.
func (c *NodeClient) recheck() {
	c.mu.Lock()
	if c.reported {
		c.mu.Unlock()
		return
	}
	c.materializeLocked()
	v := c.node.Check()
	if v != nil {
		c.reported = true
	}
	c.mu.Unlock()
	if v == nil {
		return
	}
	// A send failure recycles the connection; the rejoin sync re-triggers
	// this check, so the report is not lost for good.
	//automon:allow erreig best-effort send: a failed frame is recovered by the reconnect/full-sync path, not the caller
	_ = c.send(v)
}

func (c *NodeClient) signalResolved() {
	select {
	case c.resolved <- struct{}{}:
	default:
	}
}

// fail records a permanent failure (reconnection exhausted or disabled).
func (c *NodeClient) fail(err error) {
	c.stateMu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.stateMu.Unlock()
	c.failedOnce.Do(func() { close(c.failed) })
	c.signalResolved() // unblock any waiting Update
}

// WaitReady blocks until the node has installed its first safe zone (the
// initial full sync reached it), the client permanently fails, or the
// timeout expires. Call it after the coordinator reports Ready before
// streaming updates: until the first Sync arrives the node is silent by
// design, so updates pushed earlier are not monitored.
func (c *NodeClient) WaitReady(timeout time.Duration) error {
	// A failure that precedes readiness must surface immediately, not after
	// the full timeout.
	select {
	case <-c.failed:
		return fmt.Errorf("transport: node %d failed before its first sync: %w", c.ID, c.Err())
	default:
	}
	//automon:allow floatflow wait-for-any by design: the race only selects which error (or nil) surfaces, no protocol value depends on the winning arm
	select {
	case <-c.ready:
		return nil
	case <-c.failed:
		return fmt.Errorf("transport: node %d failed before its first sync: %w", c.ID, c.Err())
	case <-time.After(timeout):
		return fmt.Errorf("transport: node %d never received its first sync", c.ID)
	}
}

// Err returns the permanent failure, if any. Transient connection losses
// that the reconnect loop absorbed do not count.
func (c *NodeClient) Err() error {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.err
}

// materializeLocked installs the latest application vector into the node
// (elided mode only; no-op otherwise). The resulting SetData resets the
// elision budget, so the next elided update runs an exact check. Callers
// must hold c.mu.
func (c *NodeClient) materializeLocked() {
	if c.latest != nil {
		c.node.SetData(c.latest)
	}
}

// EnableElision turns on safe-zone check elision for this client: UpdateElided
// then skips the exact constraint check (and its traffic) while the node's
// distance-to-boundary budget proves the vector still inside the safe zone.
// Reports false — leaving the client on the per-update path — when the
// function carries no curvature bound.
func (c *NodeClient) EnableElision() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.node.EnableElision() {
		return false
	}
	if c.latest == nil {
		c.latest = append([]float64(nil), c.node.LocalVector()...)
	}
	return true
}

// Update installs a new local vector, checks the local constraints, and —
// if they are violated — reports to the coordinator and blocks until the
// violation is resolved (new slack or safe zone installed). A connection
// loss during the wait is absorbed: the rejoin full sync resolves the
// violation like any other sync.
func (c *NodeClient) Update(x []float64) error {
	return c.update(x, false)
}

// UpdateElided is Update on the elided fast path: it spends the vector's
// exact movement from the elision budget and runs the full check (with
// identical protocol behavior to Update) only when the budget no longer
// proves the move safe. Requires a successful EnableElision.
func (c *NodeClient) UpdateElided(x []float64) error {
	return c.update(x, true)
}

// update is the shared implementation behind Update and UpdateElided.
func (c *NodeClient) update(x []float64, elide bool) error {
	c.mu.Lock()
	// Drain a stale resolution signal so we wait for a fresh one.
	select {
	case <-c.resolved:
	default:
	}
	var v *core.Violation
	switch {
	case c.latest != nil:
		norm := math.Sqrt(linalg.SqDist(x, c.latest))
		copy(c.latest, x)
		if elide && !c.node.SpendBudget(norm) {
			// Proven inside the safe zone: skip the exact check entirely.
			c.elided++
			c.mu.Unlock()
			return c.Err()
		}
		v = c.node.UpdateDataRefresh(x)
	case elide:
		c.mu.Unlock()
		return fmt.Errorf("transport: node %d: UpdateElided without EnableElision", c.ID)
	default:
		v = c.node.UpdateData(x)
	}
	send := v != nil && !c.reported
	if send {
		c.reported = true
	}
	c.mu.Unlock()
	if v == nil {
		return c.Err()
	}
	if send {
		// A failed report is not fatal: the connection recycles, the rejoin
		// full sync re-checks the constraints, and the wait below completes.
		//automon:allow erreig best-effort send: a failed frame is recovered by the reconnect/full-sync path, not the caller
		_ = c.send(v)
	}
	// Resolution signals are not addressed to a specific violation (a sync
	// triggered by another node's violation also lands here), so wait until
	// this node's constraints actually hold again.
	deadline := time.After(c.opts.ResolveTimeout)
	for {
		select {
		case <-c.resolved:
		case <-deadline:
			return fmt.Errorf("transport: node %d violation resolution timed out", c.ID)
		}
		if err := c.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		still := c.node.Check()
		c.mu.Unlock()
		if still == nil {
			return nil
		}
	}
}

// ElidedUpdates returns how many UpdateElided calls skipped their exact
// check because the elision budget proved the move safe.
func (c *NodeClient) ElidedUpdates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elided
}

// CurrentValue returns the node's current estimate f(x0).
func (c *NodeClient) CurrentValue() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node.CurrentValue()
}

// Close tears down the connection and stops the reconnect loop.
func (c *NodeClient) Close() {
	c.stateMu.Lock()
	c.closed = true
	conn := c.conn
	c.stateMu.Unlock()
	c.closeOnce.Do(func() { close(c.closeCh) })
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
}
