package transport

import (
	"math"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
)

// driveElide runs one loopback cluster over the v2 batched transport through
// a deterministic schedule: a long small-step drift phase (elidable), then a
// spike on node 0 that must violate, then a short settle phase. Returns the
// final estimate, coordinator stats, and how many updates skipped their
// exact check.
func driveElide(t *testing.T, elide bool) (est float64, stats core.CoordStats, elided int64) {
	t.Helper()
	const half, n = 2, 2
	f := funcs.InnerProduct(half)
	initial := [][]float64{{0.5, 0.5, 1, 1}, {0.5, 0.5, 1, 1}}
	// Batching alone upgrades the wire to v2 framed batches (group tag 0).
	opts := Options{Batch: BatchOptions{MaxBytes: 1 << 16, MaxDelay: time.Millisecond}}
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: 0.2}, opts, initial)
	defer coord.Close()
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	if elide {
		for _, nd := range nodes {
			if !nd.EnableElision() {
				t.Fatal("inner product has a constant Hessian; elision must enable")
			}
		}
	}
	upd := func(i int, x []float64) {
		var err error
		if elide {
			err = nodes[i].UpdateElided(x)
		} else {
			err = nodes[i].Update(x)
		}
		if err != nil {
			t.Fatalf("node %d update: %v", i, err)
		}
	}
	for step := 1; step <= 40; step++ {
		for i := range nodes {
			u := 0.5 + 0.002*float64(step) + 0.001*float64(i)
			upd(i, []float64{u, u, 1, 1})
		}
	}
	upd(0, []float64{3, 3, 1, 1}) // spike: must violate and resync
	for step := 1; step <= 5; step++ {
		upd(1, []float64{0.6, 0.6, 1, 1})
	}
	// Wait for async resolution traffic to quiesce before reading state.
	stable, last := 0, int64(-1)
	for stable < 5 {
		time.Sleep(10 * time.Millisecond)
		cur := coord.Stats.MessagesSent.Load() + coord.Stats.MessagesReceived.Load()
		if cur == last {
			stable++
		} else {
			stable = 0
		}
		last = cur
	}
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		elided += nd.ElidedUpdates()
	}
	return coord.Estimate(), coord.CoordStats(), elided
}

// TestClusterElidedMatchesPerUpdate runs the same deterministic schedule
// through the per-update and elided clients over the batched v2 wire and
// demands the same protocol outcome: identical sync counts, an identical
// final estimate, and a real share of checks skipped — while the spike is
// still caught immediately.
func TestClusterElidedMatchesPerUpdate(t *testing.T) {
	estRef, statsRef, elidedRef := driveElide(t, false)
	if elidedRef != 0 {
		t.Fatalf("per-update run reported %d elided checks", elidedRef)
	}
	estEl, statsEl, elided := driveElide(t, true)
	if elided == 0 {
		t.Fatal("elided run never skipped a check during the drift phase")
	}
	if math.Float64bits(estRef) != math.Float64bits(estEl) {
		t.Fatalf("estimates diverge: per-update %v, elided %v", estRef, estEl)
	}
	if statsRef.FullSyncs != statsEl.FullSyncs || statsRef.SafeZoneViolations != statsEl.SafeZoneViolations {
		t.Fatalf("protocol stats diverge:\nper-update %+v\nelided     %+v", statsRef, statsEl)
	}
	// The spike resynced the group, so the estimate reflects it within ε.
	truth := f2Truth()
	if math.Abs(estEl-truth) > 0.2+1e-9 {
		t.Fatalf("elided estimate %v missed the spike (truth %v)", estEl, truth)
	}
}

// f2Truth is the ground truth of the schedule's final state:
// x̄ = ([3,3,1,1] + [0.6,0.6,1,1])/2, f = ⟨u,v⟩.
func f2Truth() float64 {
	u := (3.0 + 0.6) / 2
	return 2 * u * 1
}
