package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
	"automon/internal/shard"
)

// recordingHandler captures what the listener routes out of the uplink.
type recordingHandler struct {
	mu       sync.Mutex
	partials []*core.Partial
	rejoins  []*core.SubtreeRejoin
}

func (h *recordingHandler) AcceptPartial(p *core.Partial) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partials = append(h.partials, p)
	return true
}

func (h *recordingHandler) HandleSubtreeRejoinMsg(m *core.SubtreeRejoin) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rejoins = append(h.rejoins, m)
	return nil
}

func (h *recordingHandler) counts() (int, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.partials), len(h.rejoins)
}

// TestSubtreeLinkEndToEnd pushes partial-aggregate and sub-tree-rejoin
// frames through a real TCP uplink and checks they arrive intact and are
// counted on both sides.
func TestSubtreeLinkEndToEnd(t *testing.T) {
	h := &recordingHandler{}
	l, err := ListenSubtreeParent("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	u, err := DialSubtreeParent(l.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	accs := make([]linalg.Acc, 2)
	linalg.AddVec(accs, []float64{0.25, 0.75})
	for i := 0; i < 3; i++ {
		if err := u.SendPartial(&core.Partial{ShardID: i, NodeID: -1, Epoch: 7, Weight: 2,
			Accs: append([]linalg.Acc(nil), accs...)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.SendSubtreeRejoin(&core.SubtreeRejoin{ShardID: 1, IDs: []int{2, 3},
		Xs: [][]float64{{0.1, 0.9}, {0.2, 0.8}}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "frames to arrive", func() bool { p, r := h.counts(); return p == 3 && r == 1 })
	if err := l.Err(); err != nil {
		t.Fatalf("clean uplink latched an error: %v", err)
	}
	h.mu.Lock()
	got := h.partials[2]
	rj := h.rejoins[0]
	h.mu.Unlock()
	if got.ShardID != 2 || got.Epoch != 7 || got.Weight != 2 || got.Accs[1].Round() != 0.75 {
		t.Fatalf("partial arrived mangled: %+v", got)
	}
	if rj.ShardID != 1 || len(rj.IDs) != 2 || rj.Xs[1][0] != 0.2 {
		t.Fatalf("rejoin arrived mangled: %+v", rj)
	}
	if l.Stats.MessagesReceived.Load() != 4 || u.Stats.MessagesSent.Load() != 4 {
		t.Fatalf("traffic counts wrong: parent rx %d, child tx %d",
			l.Stats.MessagesReceived.Load(), u.Stats.MessagesSent.Load())
	}
}

// TestSubtreeLinkRejectsForeignFrames: a frame type that has no business on
// a shard uplink kills that connection and latches a protocol error, but the
// listener keeps serving other uplinks.
func TestSubtreeLinkRejectsForeignFrames(t *testing.T) {
	h := &recordingHandler{}
	l, err := ListenSubtreeParent("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rogue, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	if _, err := rogue.Write(frameOf(&core.Violation{NodeID: 1, Kind: core.ViolationSafeZone,
		X: []float64{0.5}})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "foreign frame to latch an error", func() bool {
		return errors.Is(l.Err(), errMalformedFrame)
	})

	// The listener survives: a fresh, well-behaved uplink still flows.
	u, err := DialSubtreeParent(l.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.SendPartial(&core.Partial{ShardID: 0, NodeID: -1, Epoch: 1, Weight: 1,
		Accs: make([]linalg.Acc, 1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "post-rogue partial", func() bool { p, _ := h.counts(); return p == 1 })
}

// TestSubtreeUplinkRejoinHealsTree is the wire-level heal path: a sub-tree
// is partitioned away (uplink dies, sub-tree killed), then a fresh uplink
// re-registers the whole partition with one SubtreeRejoin frame and the tree
// returns to full strength.
func TestSubtreeUplinkRejoinHealsTree(t *testing.T) {
	fn := funcs.SqNorm(2)
	comm := &staticComm{x: []float64{0.5, 0.5}}
	tr, err := shard.NewTree(fn, 4, core.Config{Epsilon: 0.5}, comm, shard.Options{Shards: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		t.Fatal(err)
	}
	l, err := ListenSubtreeParent("127.0.0.1:0", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	u, err := DialSubtreeParent(l.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	u.Close() // the partition event: the child's link drops
	if err := tr.KillSubtree(1); err != nil {
		t.Fatal(err)
	}
	if !tr.Degraded() || tr.LiveCount() != 2 {
		t.Fatalf("kill did not degrade the tree: degraded=%v live=%d", tr.Degraded(), tr.LiveCount())
	}

	u2, err := DialSubtreeParent(l.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if err := u2.SendSubtreeRejoin(&core.SubtreeRejoin{ShardID: 1, IDs: []int{2, 3},
		Xs: [][]float64{{0.6, 0.4}, {0.4, 0.6}}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "tree to heal", func() bool { return !tr.Degraded() && tr.LiveCount() == 4 })
	if err := l.Err(); err != nil {
		t.Fatalf("healing rejoin latched an error: %v", err)
	}
}

// staticComm answers every pull with one fixed vector.
type staticComm struct{ x []float64 }

func (c *staticComm) RequestData(id int) []float64 { return c.x }
func (c *staticComm) SendSync(int, *core.Sync)     {}
func (c *staticComm) SendSlack(int, *core.Slack)   {}
