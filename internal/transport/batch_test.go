package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"automon/internal/core"
)

// memConn is an in-memory net.Conn sink for frame-writer tests: writes append
// to a buffer under a lock (the MaxDelay timer flushes from another
// goroutine), reads drain it, deadlines are no-ops.
type memConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	closed bool
}

func (c *memConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	c.writes++
	return c.buf.Write(p)
}

func (c *memConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Read(p)
}

func (c *memConn) buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Len()
}

func (c *memConn) writeCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func (c *memConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *memConn) LocalAddr() net.Addr              { return nil }
func (c *memConn) RemoteAddr() net.Addr             { return nil }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// drainFrames decodes every complete frame sitting in the conn.
func drainFrames(t *testing.T, c *memConn, stats *TrafficStats) []*inFrame {
	t.Helper()
	var out []*inFrame
	for c.buffered() > 0 {
		fb, err := decodeAnyFrame(c, stats)
		if err != nil {
			t.Fatalf("decoding written frames: %v", err)
		}
		out = append(out, fb)
	}
	return out
}

// flatMsgs concatenates the messages of a frame sequence in arrival order.
func flatMsgs(frames []*inFrame) []core.Message {
	var out []core.Message
	for _, fb := range frames {
		out = append(out, fb.msgs...)
	}
	return out
}

// batchFrameOf hand-builds a v2 batch frame, independent of the writer, so
// decoder tests cannot inherit a writer bug.
func batchFrameOf(group GroupID, msgs ...core.Message) []byte {
	var body []byte
	for _, m := range msgs {
		p := m.Encode()
		var h [batchSubHeader]byte
		binary.LittleEndian.PutUint32(h[:], uint32(len(p)))
		body = append(body, h[:]...)
		body = append(body, p...)
	}
	buf := make([]byte, frameHeader+batchHdrLen+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(batchTag)<<28|uint32(batchHdrLen+len(body)))
	binary.LittleEndian.PutUint16(buf[frameHeader:], uint16(group))
	binary.LittleEndian.PutUint16(buf[frameHeader+2:], uint16(len(msgs)))
	copy(buf[frameHeader+batchHdrLen:], body)
	return buf
}

func sampleMessages() []core.Message {
	return []core.Message{
		&core.DataRequest{NodeID: 0},
		&core.DataResponse{NodeID: 1, X: []float64{1, 2, 3}},
		&core.Violation{NodeID: 2, Kind: core.ViolationSafeZone, X: []float64{0.5}},
		&core.Slack{NodeID: 3, Slack: []float64{-1, 1}},
		&core.Rejoin{NodeID: 4, X: []float64{9, 9}},
	}
}

// TestBatchRoundTripProperty is the round-trip property for group-tagged
// frames: for every message subset and several group ids, what the writer
// frames the reader returns — same group, same messages, same order, same
// encodings.
func TestBatchRoundTripProperty(t *testing.T) {
	msgs := sampleMessages()
	for _, group := range []GroupID{0, 1, 7, MaxGroups - 1} {
		for n := 1; n <= len(msgs); n++ {
			conn := &memConn{}
			w := newFrameWriter(conn, group, true, Options{Batch: BatchOptions{MaxBytes: 1 << 20}}, &TrafficStats{})
			for _, m := range msgs[:n] {
				if err := w.writeMsg(m, false); err != nil {
					t.Fatalf("writeMsg: %v", err)
				}
			}
			if err := w.flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			var stats TrafficStats
			frames := drainFrames(t, conn, &stats)
			if len(frames) != 1 {
				t.Fatalf("group %d, %d msgs: got %d frames, want 1", group, n, len(frames))
			}
			fb := frames[0]
			if !fb.v2 || fb.group != group {
				t.Fatalf("frame came back as v2=%v group=%d, want v2 group=%d", fb.v2, fb.group, group)
			}
			if len(fb.msgs) != n {
				t.Fatalf("got %d messages, want %d", len(fb.msgs), n)
			}
			for i, m := range fb.msgs {
				if !reflect.DeepEqual(m, msgs[i]) {
					t.Fatalf("message %d mutated in transit: %#v != %#v", i, m, msgs[i])
				}
			}
		}
	}
}

// TestBatchMaxBytesBoundary pins the max-bytes trigger: messages buffer while
// the body stays under MaxBytes and flush in one frame the moment a write
// reaches it.
func TestBatchMaxBytesBoundary(t *testing.T) {
	m := &core.DataResponse{NodeID: 1, X: []float64{1, 2, 3}}
	per := batchSubHeader + len(m.Encode())
	const count = 4
	conn := &memConn{}
	w := newFrameWriter(conn, 2, true, Options{Batch: BatchOptions{MaxBytes: count * per}}, &TrafficStats{})
	for i := 0; i < count-1; i++ {
		if err := w.writeMsg(m, false); err != nil {
			t.Fatalf("writeMsg: %v", err)
		}
		if got := conn.buffered(); got != 0 {
			t.Fatalf("after %d messages (under MaxBytes) %d bytes were written", i+1, got)
		}
	}
	// The count-th message makes the body exactly MaxBytes: flush.
	if err := w.writeMsg(m, false); err != nil {
		t.Fatalf("writeMsg: %v", err)
	}
	if conn.buffered() == 0 {
		t.Fatal("body reached MaxBytes but nothing was flushed")
	}
	frames := drainFrames(t, conn, &TrafficStats{})
	if len(frames) != 1 || len(frames[0].msgs) != count {
		t.Fatalf("got %d frames / %d msgs, want 1 frame of %d", len(frames), len(flatMsgs(frames)), count)
	}
	if conn.writeCalls() != 1 {
		t.Fatalf("batch left in %d writes, want a single atomic write", conn.writeCalls())
	}
}

// TestBatchMaxDelayTimer pins the timer backstop: a lone buffered message
// may wait at most MaxDelay before the batch flushes on its own.
func TestBatchMaxDelayTimer(t *testing.T) {
	conn := &memConn{}
	w := newFrameWriter(conn, 1, true,
		Options{Batch: BatchOptions{MaxBytes: 1 << 20, MaxDelay: 20 * time.Millisecond}}, &TrafficStats{})
	if err := w.writeMsg(&core.DataRequest{NodeID: 0}, false); err != nil {
		t.Fatalf("writeMsg: %v", err)
	}
	if got := conn.buffered(); got != 0 {
		t.Fatalf("message flushed immediately (%d bytes) despite batching", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for conn.buffered() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("MaxDelay timer never flushed the batch")
		}
		time.Sleep(time.Millisecond)
	}
	frames := drainFrames(t, conn, &TrafficStats{})
	if len(frames) != 1 || len(frames[0].msgs) != 1 {
		t.Fatalf("timer flush produced %d frames", len(frames))
	}
}

// TestBatchUrgentFlushesBuffered pins the urgent trigger and its ordering
// contract: an urgent message flushes the whole buffer including itself, in
// write order — urgency must never let a message overtake earlier ones.
func TestBatchUrgentFlushesBuffered(t *testing.T) {
	conn := &memConn{}
	w := newFrameWriter(conn, 3, true, Options{Batch: BatchOptions{MaxBytes: 1 << 20}}, &TrafficStats{})
	want := []core.Message{
		&core.Slack{NodeID: 0, Slack: []float64{1}},
		&core.Slack{NodeID: 1, Slack: []float64{2}},
		&core.DataRequest{NodeID: 2}, // urgent
	}
	for i, m := range want {
		if err := w.writeMsg(m, i == len(want)-1); err != nil {
			t.Fatalf("writeMsg: %v", err)
		}
	}
	frames := drainFrames(t, conn, &TrafficStats{})
	if len(frames) != 1 {
		t.Fatalf("urgent write produced %d frames, want 1", len(frames))
	}
	got := flatMsgs(frames)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order not preserved: %#v != %#v", got, want)
	}
}

// TestBatchOrderDeterministic is the determinism property behind the
// automon-lint contract: for any interleaving of urgent and batched writes,
// the concatenation of delivered frames is exactly the write sequence.
func TestBatchOrderDeterministic(t *testing.T) {
	// Every 8-write urgency pattern, exhaustively.
	for pattern := 0; pattern < 1<<8; pattern++ {
		conn := &memConn{}
		w := newFrameWriter(conn, 1, true, Options{Batch: BatchOptions{MaxBytes: 1 << 20}}, &TrafficStats{})
		var want []core.Message
		for i := 0; i < 8; i++ {
			m := &core.Slack{NodeID: i, Slack: []float64{float64(i)}}
			want = append(want, m)
			if err := w.writeMsg(m, pattern&(1<<i) != 0); err != nil {
				t.Fatalf("writeMsg: %v", err)
			}
		}
		if err := w.flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		got := flatMsgs(drainFrames(t, conn, &TrafficStats{}))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern %08b: delivery order diverged from write order", pattern)
		}
	}
}

// TestBatchStatsIdentity pins the generalized wire accounting: a flushed
// batch counts its messages individually, one frame, and the exact batch
// header bytes, preserving the Wire = Payload + Frames·overhead + Batch
// identity on both ends.
func TestBatchStatsIdentity(t *testing.T) {
	conn := &memConn{}
	var sendStats, recvStats TrafficStats
	w := newFrameWriter(conn, 5, true, Options{Batch: BatchOptions{MaxBytes: 1 << 20}}, &sendStats)
	msgs := sampleMessages()
	payload := 0
	for _, m := range msgs {
		payload += len(m.Encode())
		if err := w.writeMsg(m, false); err != nil {
			t.Fatalf("writeMsg: %v", err)
		}
	}
	if err := w.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	drainFrames(t, conn, &recvStats)
	for name, s := range map[string]*TrafficStats{"send": &sendStats, "recv": &recvStats} {
		checkStatsIdentity(t, name, s)
	}
	over := int64(batchHdrLen + len(msgs)*batchSubHeader)
	if got := sendStats.MessagesSent.Load(); got != int64(len(msgs)) {
		t.Fatalf("messages sent = %d, want %d", got, len(msgs))
	}
	if got := sendStats.FramesSent.Load(); got != 1 {
		t.Fatalf("frames sent = %d, want 1", got)
	}
	if got := sendStats.BatchOverheadSent.Load(); got != over {
		t.Fatalf("batch overhead sent = %d, want %d", got, over)
	}
	if got, want := sendStats.WireSent.Load(),
		int64(payload)+over+frameHeader+perMessageWireOverhead; got != want {
		t.Fatalf("wire sent = %d, want %d", got, want)
	}
	if got, want := recvStats.MessagesReceived.Load(), int64(len(msgs)); got != want {
		t.Fatalf("messages received = %d, want %d", got, want)
	}
}

// TestBatchV1WriterPassThrough pins legacy compatibility: a v1-negotiated
// writer ignores batching and emits byte-identical legacy frames that the
// legacy decoder still reads.
func TestBatchV1WriterPassThrough(t *testing.T) {
	conn := &memConn{}
	var stats TrafficStats
	w := newFrameWriter(conn, 0, false, Options{Batch: BatchOptions{MaxBytes: 1 << 20, MaxDelay: time.Hour}}, &stats)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := w.writeMsg(m, false); err != nil {
			t.Fatalf("writeMsg: %v", err)
		}
	}
	if got, want := stats.FramesSent.Load(), int64(len(msgs)); got != want {
		t.Fatalf("v1 writer coalesced: %d frames for %d messages", got, want)
	}
	var want []byte
	for _, m := range msgs {
		want = append(want, frameOf(m)...)
	}
	got := make([]byte, conn.buffered())
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("reading frames: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("v1 writer output is not byte-identical to the legacy framing")
	}
}

// TestBatchGroupIDOutOfRangeRejected pins the codec bound: a structurally
// valid batch naming a group ≥ MaxGroups must be a protocol error.
func TestBatchGroupIDOutOfRangeRejected(t *testing.T) {
	frame := batchFrameOf(0, &core.DataRequest{NodeID: 1})
	binary.LittleEndian.PutUint16(frame[frameHeader:], MaxGroups)
	var stats TrafficStats
	_, err := decodeAnyFrame(bytes.NewReader(frame), &stats)
	if !errors.Is(err, errMalformedFrame) {
		t.Fatalf("group %d accepted: err=%v, want errMalformedFrame", MaxGroups, err)
	}
	if stats.MessagesReceived.Load() != 0 {
		t.Fatal("rejected frame counted in stats")
	}
}

// TestBatchLyingLengthBoundsAllocation is the allocation bound for the v2
// path: a batch header declaring the maximum body with no bytes behind it
// must not allocate anywhere near the declared size.
func TestBatchLyingLengthBoundsAllocation(t *testing.T) {
	hdr := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(hdr, uint32(batchTag)<<28|batchLenMask)
	var stats TrafficStats
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const iters = 8
	for i := 0; i < iters; i++ {
		_, err := decodeAnyFrame(bytes.NewReader(hdr), &stats)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("bodyless batch: err=%v, want unexpected EOF", err)
		}
	}
	runtime.ReadMemStats(&after)
	perCall := (after.TotalAlloc - before.TotalAlloc) / iters
	if perCall > 1<<20 {
		t.Fatalf("decoder allocated ~%d bytes for a batch declaring %d bytes", perCall, batchLenMask)
	}
}

// FuzzReadBatchFrame feeds arbitrary bytes to the dual-version frame reader:
// it must produce well-formed frames or error cleanly — never panic, never
// count a failed frame, never return an out-of-range group or an empty
// message list.
func FuzzReadBatchFrame(f *testing.F) {
	msgs := sampleMessages()
	// Well-formed batches of every size and a few groups.
	for _, g := range []GroupID{0, 1, MaxGroups - 1} {
		f.Add(batchFrameOf(g, msgs...))
		f.Add(batchFrameOf(g, msgs[0]))
	}
	whole := batchFrameOf(3, msgs[:2]...)
	f.Add(whole[:frameHeader])   // header only
	f.Add(whole[:frameHeader+2]) // truncated batch header
	f.Add(whole[:len(whole)/2])  // mid-message truncation
	f.Add(append(whole, 0x00))   // trailing garbage after the frame
	// Group id out of range.
	bad := batchFrameOf(0, msgs[0])
	binary.LittleEndian.PutUint16(bad[frameHeader:], 0xFFFF)
	f.Add(bad)
	// Count lies: zero and overrunning.
	zero := batchFrameOf(1, msgs[0])
	binary.LittleEndian.PutUint16(zero[frameHeader+2:], 0)
	f.Add(zero)
	over := batchFrameOf(1, msgs[0])
	binary.LittleEndian.PutUint16(over[frameHeader+2:], 0xFFFF)
	f.Add(over)
	// Sub-length lies.
	sublie := batchFrameOf(1, msgs[0])
	binary.LittleEndian.PutUint32(sublie[frameHeader+batchHdrLen:], 1<<27)
	f.Add(sublie)
	// Lying body length with no body.
	lie := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(lie, uint32(batchTag)<<28|batchLenMask)
	f.Add(lie)
	// A legacy v1 frame must keep decoding through the same reader.
	f.Add(frameOf(msgs[1]))

	f.Fuzz(func(t *testing.T, data []byte) {
		var stats TrafficStats
		fb, err := decodeAnyFrame(bytes.NewReader(data), &stats)
		if err != nil {
			if stats.MessagesReceived.Load() != 0 {
				t.Fatalf("failed frame counted in stats: %v", err)
			}
			return
		}
		if fb == nil || len(fb.msgs) == 0 {
			t.Fatal("decoded frame with no messages and no error")
		}
		if fb.group >= MaxGroups {
			t.Fatalf("decoder returned out-of-range group %d", fb.group)
		}
		if !fb.v2 && fb.group != 0 {
			t.Fatal("v1 frame carries a non-zero group")
		}
		if got := stats.MessagesReceived.Load(); got != int64(len(fb.msgs)) {
			t.Fatalf("decoded %d messages, counted %d", len(fb.msgs), got)
		}
		if got := stats.FramesReceived.Load(); got != 1 {
			t.Fatalf("one frame counted %d times", got)
		}
		checkStatsIdentity(t, "fuzz", &stats)
	})
}
