package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"

	"automon/internal/core"
	"automon/internal/linalg"
)

// frameOf wraps a message's payload in the wire framing.
func frameOf(m core.Message) []byte {
	payload := m.Encode()
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[frameHeader:], payload)
	return buf
}

// FuzzReadFrame feeds arbitrary byte prefixes to the frame decoder: it must
// either produce a message or error cleanly — never panic, and never count a
// failed frame in the traffic stats. The allocation bound for lying length
// prefixes is asserted separately in TestLyingLengthPrefixBoundsAllocation.
func FuzzReadFrame(f *testing.F) {
	mat := linalg.NewMat(2, 2)
	copy(mat.Data, []float64{1, 2, 2, 5})
	seeds := []core.Message{
		&core.DataRequest{NodeID: 0},
		&core.DataResponse{NodeID: 1, X: []float64{1, 2, 3}},
		&core.Violation{NodeID: 2, Kind: core.ViolationSafeZone, X: []float64{0.5}},
		&core.Sync{
			NodeID: 1, Method: core.MethodE, Kind: core.ConvexDiff,
			X0: []float64{1, 2}, GradF0: []float64{0, 0}, Slack: []float64{0, 0},
			WithMatrix: true, Matrix: mat,
		},
		&core.Slack{NodeID: 3, Slack: []float64{-1, 1}},
		&core.Rejoin{NodeID: 4, X: []float64{9, 9}},
	}
	for _, m := range seeds {
		fr := frameOf(m)
		f.Add(fr)
		f.Add(fr[:len(fr)/2]) // mid-frame truncation
		f.Add(fr[:frameHeader-1])
	}
	// Lying headers: a large declared length with little or no body behind it.
	lie := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(lie, maxFrameLen)
	f.Add(lie)
	over := make([]byte, frameHeader, frameHeader+4)
	binary.LittleEndian.PutUint32(over, 1<<31)
	f.Add(append(over, 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		var stats TrafficStats
		m, err := decodeFrame(bytes.NewReader(data), &stats)
		if err != nil {
			if stats.MessagesReceived.Load() != 0 {
				t.Fatalf("failed frame counted in stats: %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil message without error")
		}
		if stats.MessagesReceived.Load() != 1 {
			t.Fatalf("decoded frame counted %d times", stats.MessagesReceived.Load())
		}
		// A decoded frame must satisfy the accounting identity.
		if got, want := stats.WireReceived.Load(),
			stats.PayloadReceived.Load()+frameHeader+perMessageWireOverhead; got != want {
			t.Fatalf("wire accounting: %d != %d", got, want)
		}
	})
}

func TestOversizedFrameRejected(t *testing.T) {
	hdr := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(hdr, maxFrameLen+1)
	var stats TrafficStats
	_, err := decodeFrame(bytes.NewReader(hdr), &stats)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("declared %d bytes, got err=%v, want errFrameTooLarge", maxFrameLen+1, err)
	}
	if !isProtocolError(err) {
		t.Fatal("oversized frame must classify as a protocol error")
	}
}

// TestLyingLengthPrefixBoundsAllocation proves a header that declares the
// maximum frame length but delivers no body cannot make the decoder allocate
// anywhere near the declared size: allocation tracks delivered bytes.
func TestLyingLengthPrefixBoundsAllocation(t *testing.T) {
	hdr := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(hdr, maxFrameLen) // largest accepted value
	var stats TrafficStats
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const iters = 8
	for i := 0; i < iters; i++ {
		_, err := decodeFrame(bytes.NewReader(hdr), &stats)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("bodyless frame: err=%v, want unexpected EOF", err)
		}
	}
	runtime.ReadMemStats(&after)
	perCall := (after.TotalAlloc - before.TotalAlloc) / iters
	if perCall > 1<<20 {
		t.Fatalf("decoder allocated ~%d bytes for a frame declaring %d bytes", perCall, maxFrameLen)
	}
}
