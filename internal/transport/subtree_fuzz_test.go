package transport

import (
	"bytes"
	"testing"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/linalg"
	"automon/internal/shard"
)

// fuzzTreeComm answers every data pull with a fixed vector — the fuzz tree
// only needs a live protocol state to validate frames against.
type fuzzTreeComm struct{ x []float64 }

func (c *fuzzTreeComm) RequestData(id int) []float64 { return c.x }
func (c *fuzzTreeComm) SendSync(int, *core.Sync)     {}
func (c *fuzzTreeComm) SendSlack(int, *core.Slack)   {}

// FuzzSubtreeFrame hardens the shard-to-parent uplink end to end: arbitrary
// bytes go through the dual-version frame reader, and whatever decodes as a
// Partial or SubtreeRejoin is handed to a live shard tree exactly as
// SubtreeListener.serveUplink would. Nothing may panic, a failed frame must
// not be counted in the traffic stats, and protocol lies that survive
// structural decoding — inflated weights, negative weights, stale or future
// epoch tags — must be rejected by the tree without touching its state.
func FuzzSubtreeFrame(f *testing.F) {
	const n, dim = 4, 2
	fn := funcs.SqNorm(dim)
	comm := &fuzzTreeComm{x: []float64{0.5, 0.5}}
	tr, err := shard.NewTree(fn, n, core.Config{Epsilon: 0.5}, comm, shard.Options{Shards: 2, Fanout: 2})
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.Init(); err != nil {
		f.Fatal(err)
	}

	accs := make([]linalg.Acc, dim)
	linalg.AddVec(accs, []float64{0.5, 0.5})
	partial := func(mut func(p *core.Partial)) []byte {
		p := &core.Partial{ShardID: 0, Kind: 0, Epoch: tr.Epoch(), NodeID: -1, Weight: 2,
			Accs: append([]linalg.Acc(nil), accs...)}
		if mut != nil {
			mut(p)
		}
		return frameOf(p)
	}
	f.Add(partial(nil))                                           // well-formed, current epoch
	f.Add(partial(func(p *core.Partial) { p.Epoch = 0 }))         // stale epoch tag
	f.Add(partial(func(p *core.Partial) { p.Epoch = 1 << 40 }))   // future epoch tag
	f.Add(partial(func(p *core.Partial) { p.Weight = 50 }))       // count lie
	f.Add(partial(func(p *core.Partial) { p.Weight = -1 }))       // negative count
	f.Add(partial(func(p *core.Partial) { p.Accs = p.Accs[:1] })) // wrong dimensionality
	f.Add(partial(func(p *core.Partial) { p.ShardID = 999 }))     // unknown shard
	f.Add(partial(func(p *core.Partial) { p.NodeID = 3; p.Kind = core.ViolationSafeZone }))
	whole := partial(nil)
	f.Add(whole[:len(whole)/2]) // mid-frame truncation
	corrupt := partial(nil)     // flipped bytes inside an accumulator window
	corrupt[len(corrupt)-5] ^= 0xFF
	f.Add(corrupt)
	f.Add(frameOf(&core.SubtreeRejoin{ShardID: 0, IDs: []int{0, 1},
		Xs: [][]float64{{0.4, 0.4}, {0.6, 0.6}}})) // healing rejoin
	f.Add(frameOf(&core.SubtreeRejoin{ShardID: 1, IDs: []int{2},
		Xs: [][]float64{{0.4, 0.4}}})) // partial population
	f.Add(frameOf(&core.Sync{NodeID: 0, Method: core.MethodE, Kind: core.ConvexDiff,
		X0: []float64{1, 2}, GradF0: []float64{0, 0}, Slack: []float64{0, 0}})) // wrong message type

	f.Fuzz(func(t *testing.T, data []byte) {
		var stats TrafficStats
		fr, err := decodeAnyFrame(bytes.NewReader(data), &stats)
		if err != nil {
			if stats.MessagesReceived.Load() != 0 {
				t.Fatalf("failed frame counted in stats: %v", err)
			}
			return
		}
		for _, m := range fr.msgs {
			switch msg := m.(type) {
			case *core.Partial:
				live := tr.LiveCount()
				ok := tr.AcceptPartial(msg)
				if ok && (msg.Epoch != tr.Epoch() || msg.Weight < 0 || msg.Weight > n ||
					len(msg.Accs) != dim) {
					t.Fatalf("protocol lie accepted: %+v (tree epoch %d)", msg, tr.Epoch())
				}
				if tr.LiveCount() != live {
					t.Fatal("AcceptPartial mutated tree liveness")
				}
			case *core.SubtreeRejoin:
				// Must not panic; a rejected frame must leave the population
				// intact. (A valid frame re-admits an already-live partition,
				// which is a no-op for liveness.)
				if err := tr.HandleSubtreeRejoinMsg(msg); err == nil && tr.LiveCount() != n {
					t.Fatalf("rejoin frame shrank the population to %d", tr.LiveCount())
				}
			}
		}
	})
}
