package transport

// Protocol-under-fault suite: the cluster runs over chaos-wrapped
// connections (injected delays, duplicates, truncations, drops, and hard
// disconnects), every node is killed and rejoins at least once, and
// afterwards the protocol must re-converge to within ε of f over the live
// nodes — with no leaked goroutines and the traffic-accounting identity
// intact on every endpoint.

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/transport/chaos"
)

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitQuiesce blocks until the cluster-wide message counters stop moving.
func waitQuiesce(coord *Coordinator, nodes []*NodeClient) {
	stable, last := 0, int64(-1)
	for stable < 5 {
		time.Sleep(20 * time.Millisecond)
		cur := coord.Stats.MessagesSent.Load() + coord.Stats.MessagesReceived.Load()
		for _, nd := range nodes {
			cur += nd.Stats.MessagesSent.Load() + nd.Stats.MessagesReceived.Load()
		}
		if cur == last {
			stable++
		} else {
			stable = 0
		}
		last = cur
	}
}

// checkStatsIdentity asserts the accounting identity
// Wire = Payload + Frames·(header+overhead) + BatchOverhead on both
// directions of one endpoint's counters. Faults may make the two sides of a
// link disagree (dropped and duplicated frames), but each side's own
// accounting must never go inconsistent. Without batching every message is
// its own frame (Frames == Messages, BatchOverhead == 0), so this is the
// historical per-message identity.
func checkStatsIdentity(t *testing.T, name string, s *TrafficStats) {
	t.Helper()
	const perFrame = int64(frameHeader + perMessageWireOverhead)
	if got, want := s.WireSent.Load(),
		s.PayloadSent.Load()+s.FramesSent.Load()*perFrame+s.BatchOverheadSent.Load(); got != want {
		t.Errorf("%s: send identity broken: wire=%d, payload+overhead=%d", name, got, want)
	}
	if got, want := s.WireReceived.Load(),
		s.PayloadReceived.Load()+s.FramesReceived.Load()*perFrame+s.BatchOverheadReceived.Load(); got != want {
		t.Errorf("%s: recv identity broken: wire=%d, payload+overhead=%d", name, got, want)
	}
	if s.FramesSent.Load() > s.MessagesSent.Load() {
		t.Errorf("%s: more frames than messages sent", name)
	}
	if s.FramesReceived.Load() > s.MessagesReceived.Load() {
		t.Errorf("%s: more frames than messages received", name)
	}
}

// checkNoGoroutineLeak waits for the goroutine count to return to the
// baseline captured before the cluster started.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func closeCluster(coord *Coordinator, nodes []*NodeClient) {
	for _, nd := range nodes {
		nd.Close()
	}
	coord.Close()
}

// TestChaosKillAndRejoinEveryNode is the acceptance schedule: background
// faults (delay, duplicate, truncate, disconnect) while data flows, then a
// deterministic kill of every node's connection, then a clean final round.
// Every node must rejoin, and the final estimate must sit within ε of the
// ground truth over the (fully revived) node population.
func TestChaosKillAndRejoinEveryNode(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const half, n = 2, 3
	f := funcs.InnerProduct(half)
	eps := 0.2

	dialer := chaos.NewDialer(chaos.Config{
		Seed:     7,
		MaxDelay: 2 * time.Millisecond,
		// No silent drops here: every fault either delays, duplicates, or
		// kills the connection, so the rejoin full sync always repairs state.
		// TestChaosLossyLinkReconverges covers drops.
		Write: chaos.FaultRates{Delay: 0.10, Duplicate: 0.05, Truncate: 0.02, Disconnect: 0.02},
		Read:  chaos.FaultRates{Delay: 0.10, Disconnect: 0.02},
	})
	dialer.SetEnabled(false) // clean setup; faults start once the cluster is up

	opts := Options{
		Dial:                 dialer.Dial,
		RequestTimeout:       2 * time.Second,
		RegisterTimeout:      2 * time.Second,
		ResolveTimeout:       30 * time.Second,
		ReconnectBase:        5 * time.Millisecond,
		MaxReconnectAttempts: 25,
	}
	initial := [][]float64{
		{0.5, 0.5, 1, 1},
		{0.5, 0.5, 1, 1},
		{0.5, 0.5, 1, 1},
	}
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: eps}, opts, initial)
	defer closeCluster(coord, nodes)

	dialer.SetEnabled(true)

	// Phase 1: all nodes drift upward while the link misbehaves underneath.
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *NodeClient) {
			defer wg.Done()
			for step := 1; step <= 25; step++ {
				u := 0.5 + 0.04*float64(step)
				if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
					t.Errorf("node %d update %d under chaos: %v", i, step, err)
					return
				}
			}
		}(i, nd)
	}
	wg.Wait()
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: kill every node's connection, one at a time, and wait for each
	// to reconnect and rejoin before killing the next.
	for i, nd := range nodes {
		before := nd.Reconnects()
		nd.DropConnection()
		waitFor(t, 15*time.Second, "node rejoin after forced kill", func() bool {
			return nd.Reconnects() > before
		})
		if nd.Reconnects() < 1 {
			t.Fatalf("node %d never rejoined", i)
		}
	}

	// Phase 3: faults off, one last clean round far outside the current zone
	// so the final state is rebuilt over chaos-free connections.
	dialer.SetEnabled(true) // no-op; explicit for symmetry with the check below
	if dialer.Stats.Total() == 0 {
		t.Fatal("chaos schedule injected no faults; the test exercised nothing")
	}
	dialer.SetEnabled(false)
	final := []float64{2, 2, 1, 1}
	for i, nd := range nodes {
		if err := nd.Update(final); err != nil {
			t.Fatalf("node %d clean final update: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "all nodes live again", func() bool {
		return !coord.Degraded() && coord.LiveNodes() == n
	})
	waitQuiesce(coord, nodes)

	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	truth := f.Value(final) // every node holds `final`, so the mean is `final`
	if got := coord.Estimate(); math.Abs(got-truth) > eps+1e-9 {
		t.Fatalf("estimate %v after recovery, want within ε=%v of %v", got, eps, truth)
	}
	if stats := coord.CoordStats(); stats.Rejoins < n {
		t.Fatalf("coordinator recorded %d rejoins, want ≥ %d (every node killed once)", stats.Rejoins, n)
	}

	checkStatsIdentity(t, "coordinator", &coord.Stats)
	for i, nd := range nodes {
		checkStatsIdentity(t, "node "+string(rune('0'+i)), &nd.Stats)
	}

	closeCluster(coord, nodes)
	checkNoGoroutineLeak(t, baseline)
}

// TestChaosLossyLinkReconverges turns on silent frame drops — the one fault
// that can desynchronize node and coordinator state without killing the
// connection. Transient resolution timeouts are tolerated during the storm;
// once the link is clean again the protocol must re-converge.
func TestChaosLossyLinkReconverges(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const half, n = 2, 3
	f := funcs.InnerProduct(half)
	eps := 0.2

	dialer := chaos.NewDialer(chaos.Config{
		Seed:     11,
		MaxDelay: time.Millisecond,
		Write:    chaos.FaultRates{Drop: 0.05, Disconnect: 0.03},
		Read:     chaos.FaultRates{Drop: 0.02, Disconnect: 0.03},
	})
	dialer.SetEnabled(false)

	opts := Options{
		Dial:                 dialer.Dial,
		RequestTimeout:       time.Second,
		RegisterTimeout:      time.Second,
		ResolveTimeout:       2 * time.Second,
		ReconnectBase:        5 * time.Millisecond,
		MaxReconnectAttempts: 25,
	}
	initial := [][]float64{
		{0.5, 0.5, 1, 1},
		{0.5, 0.5, 1, 1},
		{0.5, 0.5, 1, 1},
	}
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: eps}, opts, initial)
	defer closeCluster(coord, nodes)

	dialer.SetEnabled(true)

	// Storm: updates may time out while frames vanish; only a permanent
	// client failure (reconnect budget exhausted) or a fatal coordinator
	// error is a bug.
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *NodeClient) {
			defer wg.Done()
			for step := 1; step <= 15; step++ {
				u := 0.5 + 0.06*float64(step)
				if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
					if perm := nd.Err(); perm != nil {
						t.Errorf("node %d failed permanently under loss: %v", i, perm)
						return
					}
					// transient: dropped frames stalled this resolution
				}
			}
		}(i, nd)
	}
	wg.Wait()
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}

	// Clean repair: keep pushing the final vector until the estimate lands.
	// Early clean updates can still hit a connection desynchronized by a
	// read-side drop; those recycle and rejoin, so retrying converges.
	dialer.SetEnabled(false)
	final := []float64{2, 2, 1, 1}
	truth := f.Value(final)
	deadline := time.Now().Add(20 * time.Second)
	for {
		healthy := true
		for i, nd := range nodes {
			if err := nd.Update(final); err != nil {
				if perm := nd.Err(); perm != nil {
					t.Fatalf("node %d failed permanently during repair: %v", i, perm)
				}
				healthy = false
			}
		}
		if healthy && !coord.Degraded() &&
			math.Abs(coord.Estimate()-truth) <= eps+1e-9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never re-converged: estimate %v, truth %v, degraded %v, live %d/%d",
				coord.Estimate(), truth, coord.Degraded(), coord.LiveNodes(), n)
		}
		time.Sleep(20 * time.Millisecond)
	}

	waitQuiesce(coord, nodes)
	checkStatsIdentity(t, "coordinator", &coord.Stats)
	for i, nd := range nodes {
		checkStatsIdentity(t, "node "+string(rune('0'+i)), &nd.Stats)
	}

	closeCluster(coord, nodes)
	checkNoGoroutineLeak(t, baseline)
}

// TestCoordinatorDegradesAndRecoversOnNodeDeath pins the degraded-estimate
// semantics without randomness: a dead node shifts the estimate to the
// live-node average with Degraded() raised, and a rejoin restores the full
// population.
func TestCoordinatorDegradesAndRecoversOnNodeDeath(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const half, n = 1, 2
	f := funcs.InnerProduct(half) // f(x) = x[0]·x[1]
	initial := [][]float64{{1, 1}, {3, 1}}
	opts := Options{RequestTimeout: time.Second}
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: 0.5}, opts, initial)
	defer coord.Close()
	defer nodes[0].Close()

	// x̄ = {2,1} ⇒ f = 2.
	if got := coord.Estimate(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("initial estimate = %v, want 2", got)
	}
	if coord.Degraded() {
		t.Fatal("healthy cluster reports Degraded")
	}

	// Node 1 dies for good (client closed: no reconnect will come).
	nodes[1].Close()
	waitFor(t, 10*time.Second, "coordinator to mark the node dead", func() bool {
		return coord.Degraded() && coord.LiveNodes() == 1
	})
	// The estimate must degrade to f over the surviving node's vector.
	waitFor(t, 10*time.Second, "estimate to degrade to the live average", func() bool {
		return math.Abs(coord.Estimate()-1) <= 1e-9
	})
	if stats := coord.CoordStats(); stats.NodeDeaths < 1 {
		t.Fatalf("NodeDeaths = %d, want ≥ 1", stats.NodeDeaths)
	}

	// A fresh client rejoins under the same id with a new vector.
	revived, err := DialNode(coord.Addr(), 1, f, []float64{5, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	if err := revived.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "cluster to leave degraded mode", func() bool {
		return !coord.Degraded() && coord.LiveNodes() == n
	})
	// x̄ = ({1,1}+{5,1})/2 = {3,1} ⇒ f = 3, restored exactly by the rejoin
	// full sync.
	waitFor(t, 10*time.Second, "estimate to cover the full population", func() bool {
		return math.Abs(coord.Estimate()-3) <= 1e-9
	})
	if stats := coord.CoordStats(); stats.Rejoins < 1 {
		t.Fatalf("Rejoins = %d, want ≥ 1", stats.Rejoins)
	}
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}

	revived.Close()
	nodes[0].Close()
	coord.Close()
	checkNoGoroutineLeak(t, baseline)
}
