package transport

import (
	"fmt"
	"testing"
	"time"

	"automon/internal/core"
	"automon/internal/funcs"
	"automon/internal/obs"
)

// TestRegistryMatchesTrafficStats drives a live cluster with an attached
// registry and tracer and asserts that what a /metrics scrape would report is
// byte-for-byte what the Stats accessors report — the counters are the same
// instruments, so any drift is a binding regression.
func TestRegistryMatchesTrafficStats(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 16)
	opts := Options{Metrics: reg, Tracer: tracer}

	const half, n = 2, 2
	f := funcs.InnerProduct(half)
	initial := [][]float64{{0, 0, 1, 1}, {0, 0, 1, 1}}
	coord, nodes := startCluster(t, f, n, core.Config{Epsilon: 0.05}, opts, initial)
	defer coord.Close()
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	for step := 1; step <= 15; step++ {
		for _, nd := range nodes {
			u := 0.1 * float64(step)
			if err := nd.Update([]float64{u, u, 1, 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Quiesce: wait until the coordinator's counters stop moving.
	stable, last := 0, int64(-1)
	for stable < 5 {
		time.Sleep(10 * time.Millisecond)
		cur := coord.Stats.MessagesSent.Load() + coord.Stats.MessagesReceived.Load()
		if cur == last {
			stable++
		} else {
			stable = 0
		}
		last = cur
	}

	snap := reg.Snapshot()
	expect := func(name string, want int64) {
		t.Helper()
		got, ok := snap[name]
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		if int64(got) != want {
			t.Errorf("metric %s = %v, Stats reports %d", name, got, want)
		}
	}

	expect(`automon_transport_messages_total{dir="sent",side="coordinator"}`, coord.Stats.MessagesSent.Load())
	expect(`automon_transport_messages_total{dir="recv",side="coordinator"}`, coord.Stats.MessagesReceived.Load())
	expect(`automon_transport_payload_bytes_total{dir="sent",side="coordinator"}`, coord.Stats.PayloadSent.Load())
	expect(`automon_transport_payload_bytes_total{dir="recv",side="coordinator"}`, coord.Stats.PayloadReceived.Load())
	expect(`automon_transport_wire_bytes_total{dir="sent",side="coordinator"}`, coord.Stats.WireSent.Load())
	expect(`automon_transport_wire_bytes_total{dir="recv",side="coordinator"}`, coord.Stats.WireReceived.Load())
	for i, nd := range nodes {
		expect(fmt.Sprintf(`automon_transport_messages_total{dir="sent",side="node",node="%d"}`, i), nd.Stats.MessagesSent.Load())
		expect(fmt.Sprintf(`automon_transport_messages_total{dir="recv",side="node",node="%d"}`, i), nd.Stats.MessagesReceived.Load())
		expect(fmt.Sprintf(`automon_transport_reconnects_total{node="%d"}`, i), nd.Reconnects())
	}

	// The core coordinator inherits the endpoint registry, so the protocol
	// counters land in the same scrape and must match CoordStats.
	cs := coord.CoordStats()
	expect("automon_coordinator_full_syncs_total", int64(cs.FullSyncs))
	expect(`automon_coordinator_violations_total{kind="safe_zone"}`, int64(cs.SafeZoneViolations))
	expect("automon_coordinator_lazy_sync_attempts_total", int64(cs.LazyAttempts))

	// The tracer saw every frame both endpoints counted (ring is large
	// enough that nothing was evicted in a run this small).
	if tracer.Total() != uint64(len(tracer.Snapshot())) {
		t.Fatalf("tracer overflowed (%d events, %d retained); enlarge the ring", tracer.Total(), len(tracer.Snapshot()))
	}
	var sent, recv uint64
	for _, e := range tracer.Snapshot() {
		switch e.Kind {
		case obs.EventFrameSent:
			sent++
		case obs.EventFrameReceived:
			recv++
		}
	}
	wantSent := uint64(coord.Stats.MessagesSent.Load())
	wantRecv := uint64(coord.Stats.MessagesReceived.Load())
	for _, nd := range nodes {
		wantSent += uint64(nd.Stats.MessagesSent.Load())
		wantRecv += uint64(nd.Stats.MessagesReceived.Load())
	}
	if sent != wantSent || recv != wantRecv {
		t.Fatalf("tracer frames (sent %d, recv %d) disagree with counters (sent %d, recv %d)",
			sent, recv, wantSent, wantRecv)
	}
}

// TestZeroValueTrafficStatsWorks pins the lazy-initialization contract the
// fuzz targets rely on: a zero-value TrafficStats counts without Bind.
func TestZeroValueTrafficStatsWorks(t *testing.T) {
	var s TrafficStats
	s.countSend(10, "sync")
	s.countRecv(4, "violation")
	if s.MessagesSent.Load() != 1 || s.MessagesReceived.Load() != 1 {
		t.Fatalf("zero-value stats did not count: %d/%d", s.MessagesSent.Load(), s.MessagesReceived.Load())
	}
	if s.WireSent.Load() != 10+frameHeader+perMessageWireOverhead {
		t.Fatalf("wire accounting off: %d", s.WireSent.Load())
	}
}
