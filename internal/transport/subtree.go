package transport

import (
	"fmt"
	"net"
	"sync"

	"automon/internal/core"
)

// SubtreeHandler is the parent tier's view of a shard uplink: validated
// partial-aggregate frames and whole-sub-tree rejoins. shard.Tree implements
// it; tests may substitute recorders. AcceptPartial's verdict is the
// handler's — the link delivers every structurally valid frame and lets the
// protocol tier decide (stale epochs and count lies are protocol rejections,
// not transport errors).
type SubtreeHandler interface {
	AcceptPartial(p *core.Partial) bool
	HandleSubtreeRejoinMsg(m *core.SubtreeRejoin) error
}

// SubtreeListener is the parent side of shard-to-parent links: it accepts
// uplink connections from sub-coordinators and routes their Partial and
// SubtreeRejoin frames (over the same v1/v2 framing every other peer speaks)
// into a SubtreeHandler. A malformed frame kills only its own connection —
// the sub-coordinator redials and re-registers its whole partition with a
// SubtreeRejoin, the shard-tier analogue of a node's single-vector Rejoin.
type SubtreeListener struct {
	ln net.Listener
	h  SubtreeHandler
	// Stats counts the uplink traffic of this listener across all shard
	// connections.
	Stats TrafficStats

	mu     sync.Mutex
	err    error // first handler or protocol error, for tests to inspect
	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// ListenSubtreeParent starts a parent-tier uplink listener on addr.
func ListenSubtreeParent(addr string, h SubtreeHandler, opts Options) (*SubtreeListener, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: subtree listener needs a handler")
	}
	opts.defaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &SubtreeListener{ln: ln, h: h, done: make(chan struct{})}
	l.Stats.Bind(opts.Metrics, `side="subtree-parent"`, opts.Tracer, -1)
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's bound address.
func (l *SubtreeListener) Addr() string { return l.ln.Addr().String() }

// Err returns the first protocol or handler error any uplink produced (nil
// while all frames were clean). Connection-level errors do not stop the
// listener: surviving links keep flowing.
func (l *SubtreeListener) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close stops accepting and tears down every uplink.
func (l *SubtreeListener) Close() {
	l.closed.Do(func() {
		close(l.done)
		l.ln.Close()
	})
	l.wg.Wait()
}

func (l *SubtreeListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.done:
			default:
				l.note(err)
			}
			return
		}
		l.wg.Add(1)
		go l.serveUplink(conn)
	}
}

// serveUplink drains one sub-coordinator's frames until the connection dies.
// Frame decoding already enforces the structural invariants (length bounds,
// accumulator windows, ascending rejoin IDs); what reaches the handler is
// well-formed, and the handler applies the protocol-level checks (epoch,
// weight bounds, partition membership).
func (l *SubtreeListener) serveUplink(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	go func() {
		<-l.done
		conn.Close()
	}()
	for {
		fr, err := readAnyFrame(conn, 0, &l.Stats)
		if err != nil {
			if isProtocolError(err) {
				l.note(err)
			}
			return
		}
		for _, m := range fr.msgs {
			switch msg := m.(type) {
			case *core.Partial:
				l.h.AcceptPartial(msg)
			case *core.SubtreeRejoin:
				if err := l.h.HandleSubtreeRejoinMsg(msg); err != nil {
					l.note(err)
				}
			default:
				l.note(fmt.Errorf("%w: %s frame on a subtree uplink", errMalformedFrame, m.Type()))
				return
			}
		}
	}
}

func (l *SubtreeListener) note(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// SubtreeUplink is the child side of a shard-to-parent link: a
// sub-coordinator streams its partial aggregates upward and, after a
// partition heals, re-registers its whole sub-tree in one frame. The uplink
// always speaks wire v2, so enabling Options.Batch coalesces partials into
// shared frames exactly as node traffic coalesces.
type SubtreeUplink struct {
	conn net.Conn
	w    *frameWriter
	// Stats counts this uplink's outbound traffic.
	Stats TrafficStats
}

// DialSubtreeParent connects a sub-coordinator to its parent tier.
func DialSubtreeParent(addr string, opts Options) (*SubtreeUplink, error) {
	opts.defaults()
	conn, err := opts.Dial("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	u := &SubtreeUplink{conn: conn}
	u.Stats.Bind(opts.Metrics, `side="subtree-child"`, opts.Tracer, -1)
	u.w = newFrameWriter(conn, opts.Group, true, opts, &u.Stats)
	return u, nil
}

// SendPartial ships one partial-aggregate frame upward. Partials are what
// the parent's current gather is waiting on, so they flush any batch
// immediately (urgent), carrying earlier buffered frames with them in order.
func (u *SubtreeUplink) SendPartial(p *core.Partial) error {
	return u.w.writeMsg(p, true)
}

// SendSubtreeRejoin re-registers the whole sub-tree after a partition heals.
func (u *SubtreeUplink) SendSubtreeRejoin(m *core.SubtreeRejoin) error {
	return u.w.writeMsg(m, true)
}

// Flush drains any batched frames without sending new ones.
func (u *SubtreeUplink) Flush() error { return u.w.flush() }

// Close tears the uplink down. The parent treats it as a lost sub-tree until
// a new uplink re-registers the partition.
func (u *SubtreeUplink) Close() { u.conn.Close() }
