package funcs

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/linalg"
	"automon/internal/nn"
)

func TestInnerProduct(t *testing.T) {
	f := InnerProduct(3)
	if f.Dim() != 6 {
		t.Fatalf("dim = %d", f.Dim())
	}
	got := f.Value([]float64{1, 2, 3, 4, 5, 6})
	if got != 32 {
		t.Fatalf("value = %v, want 32", got)
	}
	if !f.HasConstantHessian() {
		t.Fatal("inner product must report a constant Hessian (ADCD-E)")
	}
}

func TestInnerProductHessianIsPermutation(t *testing.T) {
	// H of ⟨u, v⟩ is [[0, I], [I, 0]]: eigenvalues ±1.
	f := InnerProduct(2)
	h := linalg.NewMat(4, 4)
	f.Hessian([]float64{0.3, -0.7, 1.2, 0.4}, h)
	lo, hi, err := linalg.ExtremeEigenvalues(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo+1) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Fatalf("eigs = (%v, %v), want (−1, 1)", lo, hi)
	}
}

func TestQuadraticForm(t *testing.T) {
	q := linalg.NewMat(2, 2)
	copy(q.Data, []float64{1, 2, 0, 3})
	f := QuadraticForm(q)
	x := []float64{1, 2}
	// xᵀQx = 1 + 2·2 + 0 + 3·4 = 17
	if got := f.Value(x); got != 17 {
		t.Fatalf("value = %v, want 17", got)
	}
	if !f.HasConstantHessian() {
		t.Fatal("quadratic form must report constant Hessian")
	}
	// Hessian must equal Q + Qᵀ.
	h := linalg.NewMat(2, 2)
	f.Hessian(x, h)
	want := [][]float64{{2, 2}, {2, 6}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(h.At(i, j)-want[i][j]) > 1e-9 {
				t.Fatalf("H[%d,%d] = %v, want %v", i, j, h.At(i, j), want[i][j])
			}
		}
	}
}

func TestRandomQuadraticDeterministic(t *testing.T) {
	a := RandomQuadratic(4, 7)
	b := RandomQuadratic(4, 7)
	x := []float64{1, -1, 0.5, 2}
	if a.Value(x) != b.Value(x) {
		t.Fatal("RandomQuadratic not deterministic for equal seeds")
	}
}

func TestKLD(t *testing.T) {
	f := KLD(2, 0.01)
	if f.Dim() != 4 {
		t.Fatalf("dim = %d", f.Dim())
	}
	// KLD(p‖p) = 0.
	if got := f.Value([]float64{0.5, 0.5, 0.5, 0.5}); math.Abs(got) > 1e-12 {
		t.Fatalf("KLD(p‖p) = %v, want 0", got)
	}
	// Reference: Σ (p+τ)log((p+τ)/(q+τ)).
	p := []float64{0.8, 0.2}
	q := []float64{0.3, 0.7}
	var want float64
	for i := range p {
		want += (p[i] + 0.01) * math.Log((p[i]+0.01)/(q[i]+0.01))
	}
	if got := f.Value([]float64{0.8, 0.2, 0.3, 0.7}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KLD = %v, want %v", got, want)
	}
	if f.HasConstantHessian() {
		t.Fatal("KLD must not report a constant Hessian")
	}
	if f.DomainLo == nil || f.DomainLo[0] != 0 || f.DomainHi[0] != 1 {
		t.Fatal("KLD domain must be the unit box")
	}
}

func TestKLDIsConvex(t *testing.T) {
	// λmin(H) ≥ 0 at random interior points — this is what gives AutoMon its
	// deterministic guarantee for KLD.
	f := KLD(3, 0.05)
	rng := rand.New(rand.NewSource(1))
	h := linalg.NewMat(6, 6)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = 0.05 + 0.9*rng.Float64()
		}
		f.Hessian(x, h)
		lo, _, err := linalg.ExtremeEigenvalues(h)
		if err != nil {
			t.Fatal(err)
		}
		if lo < -1e-9 {
			t.Fatalf("KLD Hessian not PSD at %v: λmin = %v", x, lo)
		}
	}
}

func TestEntropyIsConcave(t *testing.T) {
	f := Entropy(4, 0.05)
	rng := rand.New(rand.NewSource(2))
	h := linalg.NewMat(4, 4)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = 0.05 + 0.9*rng.Float64()
		}
		f.Hessian(x, h)
		_, hi, err := linalg.ExtremeEigenvalues(h)
		if err != nil {
			t.Fatal(err)
		}
		if hi > 1e-9 {
			t.Fatalf("entropy Hessian not NSD at %v: λmax = %v", x, hi)
		}
	}
}

func TestNetworkMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := nn.New(rng, []int{3, 5, 4, 1}, []nn.Activation{nn.ReLU, nn.Tanh, nn.Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	f := Network("test-net", net)
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		want := net.Forward(x)
		if got := f.Value(x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("AD network disagrees with nn.Forward: %v vs %v", got, want)
		}
	}
	if f.HasConstantHessian() {
		t.Fatal("a nonlinear network must not report constant Hessian")
	}
}

func TestTrainMLPApproximatesTarget(t *testing.T) {
	f, err := TrainMLP(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var sumSq, count float64
	for trial := 0; trial < 200; trial++ {
		x := []float64{-2 + 4*rng.Float64(), -2 + 4*rng.Float64()}
		diff := f.Value(x) - MLPTarget(x)
		sumSq += diff * diff
		count++
	}
	rmse := math.Sqrt(sumSq / count)
	if rmse > 0.2 {
		t.Fatalf("MLP-2 RMSE vs target = %v, want < 0.2", rmse)
	}
}

func TestCosineSimilarity(t *testing.T) {
	f := CosineSimilarity(3)
	// Parallel vectors → 1; orthogonal → 0; antiparallel → −1.
	if got := f.Value([]float64{1, 2, 3, 2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := f.Value([]float64{1, 0, 0, 0, 1, 0}); math.Abs(got) > 1e-12 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := f.Value([]float64{1, 1, 1, -1, -1, -1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("antiparallel cosine = %v", got)
	}
	if f.HasConstantHessian() {
		t.Fatal("cosine similarity must use ADCD-X")
	}
	// Gradient sanity via finite differences.
	x := []float64{0.5, -0.2, 0.9, 0.3, 0.8, -0.4}
	grad := make([]float64, 6)
	f.Grad(x, grad)
	for i := range x {
		const h = 1e-6
		xp := append([]float64(nil), x...)
		xp[i] += h
		fp := f.Value(xp)
		xp[i] = x[i] - h
		fm := f.Value(xp)
		want := (fp - fm) / (2 * h)
		if math.Abs(grad[i]-want) > 1e-5 {
			t.Fatalf("cosine grad[%d] = %v, want %v", i, grad[i], want)
		}
	}
}

func TestLogistic(t *testing.T) {
	f := Logistic([]float64{2, -1}, 0.5)
	x := []float64{0.3, 0.8}
	want := 1 / (1 + math.Exp(-(2*0.3 - 0.8 + 0.5)))
	if got := f.Value(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logistic = %v, want %v", got, want)
	}
	if f.HasConstantHessian() {
		t.Fatal("logistic output is not quadratic")
	}
}

func TestAMSF2Function(t *testing.T) {
	f := AMSF2(2, 3)
	// f = (x₁²+...+x₆²)/2.
	if got := f.Value([]float64{1, 2, 0, 0, 1, 1}); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("AMSF2 = %v, want 3.5", got)
	}
	if !f.HasConstantHessian() {
		t.Fatal("AMSF2 must have a constant Hessian (ADCD-E)")
	}
}

func TestVarianceAugmentation(t *testing.T) {
	f := Variance()
	if !f.HasConstantHessian() {
		t.Fatal("variance must report a constant Hessian (ADCD-E)")
	}
	// Aggregate augmented samples by hand: values {1, 2, 3, 4} have
	// variance 1.25.
	vals := []float64{1, 2, 3, 4}
	avg := []float64{0, 0}
	for _, v := range vals {
		a := AugmentSquares(v)
		avg[0] += a[0] / 4
		avg[1] += a[1] / 4
	}
	if got := f.Value(avg); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("variance = %v, want 1.25", got)
	}
	// NSD Hessian ⇒ the concave-difference guarantee path applies.
	h := linalg.NewMat(2, 2)
	f.Hessian(avg, h)
	if h.At(0, 0) != -2 || h.At(1, 1) != 0 || h.At(0, 1) != 0 {
		t.Fatalf("variance Hessian = %v", h.Data)
	}
}

func TestRosenbrockSineSaddle(t *testing.T) {
	if got := Rosenbrock().Value([]float64{1, 1}); got != 0 {
		t.Fatalf("rosenbrock(1,1) = %v", got)
	}
	if got := Sine().Value([]float64{math.Pi / 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sin(π/2) = %v", got)
	}
	if got := Saddle().Value([]float64{2, 3}); got != 5 {
		t.Fatalf("saddle(2,3) = %v, want 5", got)
	}
	if !Saddle().HasConstantHessian() {
		t.Fatal("saddle has constant Hessian")
	}
	if got := SqNorm(3).Value([]float64{1, 2, 2}); got != 9 {
		t.Fatalf("sqnorm = %v", got)
	}
}
