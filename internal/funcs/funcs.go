// Package funcs is the function zoo of the AutoMon evaluation (§4.2): each
// constructor returns a core.Function built from its "source code" — an
// autodiff program — exactly as a user of the library would write it. The
// zoo covers every function monitored in the paper plus a few extras used by
// the test suite: inner product, quadratic form, KL divergence, MLP-d, the
// intrusion-detection DNN, Rosenbrock, sin, the −x1²+x2² ablation saddle,
// entropy, and the squared norm.
package funcs

import (
	"fmt"
	"math"
	"math/rand"

	"automon/internal/autodiff"
	"automon/internal/core"
	"automon/internal/linalg"
	"automon/internal/nn"
	"automon/internal/sketch"
)

// InnerProduct returns f([u, v]) = ⟨u, v⟩ with dim = 2·half. Its Hessian is
// constant, so AutoMon monitors it with ADCD-E — automatically recovering
// the hand-crafted ⟨u,v⟩ = ¼‖u+v‖² − ¼‖u−v‖² decomposition of Lazerson et
// al. (§4.3).
func InnerProduct(half int) *core.Function {
	return core.NewFunction(fmt.Sprintf("inner-product-%d", 2*half), 2*half,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			return b.Dot(x[:half], x[half:])
		})
}

// QuadraticForm returns f(x) = xᵀQx for the given (not necessarily
// symmetric) matrix Q. The Hessian Q + Qᵀ is constant: ADCD-E applies.
func QuadraticForm(q *linalg.Mat) *core.Function {
	d := q.Rows
	return core.NewFunction(fmt.Sprintf("quadratic-%d", d), d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			rows := make([]autodiff.Ref, d)
			for i := 0; i < d; i++ {
				terms := make([]autodiff.Ref, d)
				for j := 0; j < d; j++ {
					terms[j] = b.Mul(b.Const(q.At(i, j)), x[j])
				}
				rows[i] = b.Mul(x[i], b.Sum(terms...))
			}
			return b.Sum(rows...)
		})
}

// RandomQuadratic builds the §4.2 quadratic-form workload: Q with standard
// normal entries scaled by 1/d to keep values O(1) at unit inputs.
func RandomQuadratic(d int, seed int64) *core.Function {
	rng := rand.New(rand.NewSource(seed))
	q := linalg.NewMat(d, d)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64() / float64(d)
	}
	return QuadraticForm(q)
}

// KLD returns the smoothed Kullback–Leibler divergence over 2·bins inputs:
// x = [p, q] with f = Σ (pᵢ+τ)·log((pᵢ+τ)/(qᵢ+τ)). KLD is jointly convex in
// (p, q), so AutoMon's approximation guarantee is deterministic (§4.2).
// The domain is the unit box (probability-vector entries).
func KLD(bins int, tau float64) *core.Function {
	d := 2 * bins
	f := core.NewFunction(fmt.Sprintf("kld-%d", d), d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			t := b.Const(tau)
			terms := make([]autodiff.Ref, bins)
			for i := 0; i < bins; i++ {
				p := b.Add(x[i], t)
				q := b.Add(x[bins+i], t)
				terms[i] = b.Mul(p, b.Log(b.Div(p, q)))
			}
			return b.Sum(terms...)
		})
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = 1
	}
	// Gershgorin over the per-bin 2×2 Hessian blocks on the unit box: the q
	// row dominates with 1/(q+τ) + (p+τ)/(q+τ)² ≤ 1/τ + (1+τ)/τ².
	return f.WithDomain(lo, hi).WithCurvature(1/tau + (1+tau)/(tau*tau))
}

// Entropy returns f(p) = −Σ (pᵢ+τ)·log(pᵢ+τ), a concave function on the
// unit box, exercising the concave-difference guarantee path.
func Entropy(bins int, tau float64) *core.Function {
	f := core.NewFunction(fmt.Sprintf("entropy-%d", bins), bins,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			t := b.Const(tau)
			terms := make([]autodiff.Ref, bins)
			for i := 0; i < bins; i++ {
				p := b.Add(x[i], t)
				terms[i] = b.Mul(p, b.Log(p))
			}
			return b.Neg(b.Sum(terms...))
		})
	lo := make([]float64, bins)
	hi := make([]float64, bins)
	for i := range hi {
		hi[i] = 1
	}
	// The Hessian is diag(−1/(pᵢ+τ)), so ‖∇²f‖ ≤ 1/τ on the unit box.
	return f.WithDomain(lo, hi).WithCurvature(1 / tau)
}

// Network wraps a trained nn.Network as a monitored function; this is the
// "given the model's source code" entry point used for MLP-d and the
// intrusion-detection DNN.
func Network(name string, net *nn.Network) *core.Function {
	return core.NewFunction(name, net.InputDim(),
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			a := x
			for _, l := range net.Layers {
				a = b.Affine(l.W, a, l.B)
				switch l.Act {
				case nn.Tanh:
					a = b.Map(b.Tanh, a)
				case nn.ReLU:
					a = b.Map(b.Relu, a)
				case nn.Sigmoid:
					a = b.Map(b.Sigmoid, a)
				}
			}
			return a[0]
		})
}

// MLPTarget is the regression target the paper trains MLP-d on:
// x₁·exp(−(1/(d−1))·Σ xᵢ²).
func MLPTarget(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return x[0] * math.Exp(-s/float64(len(x)-1))
}

// TrainMLP trains the MLP-d network (§4.2): input d, three tanh hidden
// layers, identity output, fitted to MLPTarget on inputs covering the
// dataset's drift range. Deterministic given seed.
func TrainMLP(d int, seed int64) (*core.Function, error) {
	rng := rand.New(rand.NewSource(seed))
	hidden := 10
	net, err := nn.New(rng, []int{d, hidden, hidden, hidden, 1},
		[]nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh, nn.Identity})
	if err != nil {
		return nil, err
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 2000; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = -2.5 + 5*rng.Float64()
		}
		xs = append(xs, x)
		ys = append(ys, MLPTarget(x))
	}
	if _, err := net.Train(rng, xs, ys, nn.TrainConfig{Epochs: 30, LR: 0.02}); err != nil {
		return nil, err
	}
	return Network(fmt.Sprintf("mlp-%d", d), net), nil
}

// CosineSimilarity returns f([u, v]) = ⟨u,v⟩ / (‖u‖·‖v‖), the classic
// geometric-monitoring benchmark function of Sharfman et al., here derived
// automatically instead of through their hand-crafted sphere bounds. The
// Hessian depends on x, so AutoMon uses ADCD-X. Callers should keep the
// data away from the ‖u‖ = 0 / ‖v‖ = 0 singularity (e.g. via the domain).
func CosineSimilarity(half int) *core.Function {
	return core.NewFunction(fmt.Sprintf("cosine-%d", 2*half), 2*half,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			u, v := x[:half], x[half:]
			dot := b.Dot(u, v)
			den := b.Sqrt(b.Mul(b.SqNorm(u), b.SqNorm(v)))
			return b.Div(dot, den)
		})
}

// Logistic returns the output of a logistic-regression model on the global
// average, f(x) = σ(wᵀx + bias) — monitoring a deployed linear classifier's
// aggregate score, the simplest instance of the paper's model-monitoring
// motif.
func Logistic(w []float64, bias float64) *core.Function {
	weights := append([]float64(nil), w...)
	f := core.NewFunction(fmt.Sprintf("logistic-%d", len(w)), len(w),
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			return b.Sigmoid(b.Add(b.Dot(b.ConstVec(weights), x), b.Const(bias)))
		})
	// ∇²f = σ″(wᵀx+b)·wwᵀ and max|σ″| = √3/18, so ‖∇²f‖ ≤ (√3/18)·‖w‖²
	// everywhere.
	nw := linalg.Norm2(weights)
	return f.WithCurvature(math.Sqrt(3) / 18 * nw * nw)
}

// Rosenbrock returns f(x) = (1−x₁)² + 100(x₂−x₁²)², the hard non-constant-
// Hessian case used for neighborhood-size tuning (§3.6, §4.5).
func Rosenbrock() *core.Function {
	return core.NewFunction("rosenbrock", 2,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			a := b.Square(b.Sub(b.Const(1), x[0]))
			c := b.Mul(b.Const(100), b.Square(b.Sub(x[1], b.Square(x[0]))))
			return b.Add(a, c)
		})
}

// Sine returns f(x) = sin(x) on [0, π] (the Figure 1 walkthrough function).
func Sine() *core.Function {
	f := core.NewFunction("sin", 1,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref { return b.Sin(x[0]) })
	// |f″| = |sin| ≤ 1 everywhere (recorded against the domain box).
	return f.WithDomain([]float64{0}, []float64{math.Pi}).WithCurvature(1)
}

// Saddle returns f(x) = −x₁² + x₂², the §4.6 ablation function.
func Saddle() *core.Function {
	return core.NewFunction("saddle", 2,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			return b.Add(b.Neg(b.Square(x[0])), b.Square(x[1]))
		})
}

// Variance monitors the variance of a scalar signal via the augmentation
// technique of the paper's footnote 3: each node's local vector is the
// window average of the augmented sample [v, v²], so the global average is
// x̄ = [E v, E v²] and
//
//	f(x̄) = x̄₂ − x̄₁² = Var(v).
//
// The Hessian [[−2, 0], [0, 0]] is constant and NSD, so AutoMon selects
// ADCD-E with the concave difference and the approximation guarantee is
// deterministic — the augmentation turns a "function of all samples" into a
// function of the average vector with no manual analysis.
func Variance() *core.Function {
	return core.NewFunction("variance", 2,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref {
			return b.Sub(x[1], b.Square(x[0]))
		})
}

// AugmentSquares maps a scalar sample v to the augmented vector [v, v²]
// consumed by Variance.
func AugmentSquares(v float64) []float64 { return []float64{v, v * v} }

// AMSF2 is the §5 sketch-composition query: for an AMS sketch with the
// given shape flattened into the local vector, f(x) = (1/rows)·Σ xᵢ² is the
// (mean-estimator) second-moment query. It delegates to sketch.F2Query,
// which owns the sketch query family (entropy and inner product live there
// too); the constructor is kept in the zoo so sweeps over "every bundled
// function" keep covering it.
func AMSF2(rows, cols int) *core.Function {
	return sketch.F2Query(rows, cols)
}

// SqNorm returns f(x) = ‖x‖², a convex constant-Hessian sanity function.
func SqNorm(d int) *core.Function {
	return core.NewFunction(fmt.Sprintf("sqnorm-%d", d), d,
		func(b *autodiff.Builder, x []autodiff.Ref) autodiff.Ref { return b.SqNorm(x) })
}
