package autodiff

import (
	"testing"

	"automon/internal/linalg"
)

// benchGraph builds a d-dimensional graph with nonconstant Hessian.
func benchGraph(d int) *Graph {
	return Compile(d, func(b *Builder, x []Ref) Ref {
		acc := b.Square(x[0])
		for i := 0; i < d; i++ {
			acc = b.Add(acc, b.Powi(x[i], 3))
			acc = b.Add(acc, b.Mul(x[i], b.Square(x[(i+1)%d])))
		}
		return acc
	})
}

func BenchmarkGraphValue(b *testing.B) {
	const d = 16
	g := benchGraph(d)
	x := make([]float64, d)
	for i := range x {
		x[i] = 0.3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Value(x)
	}
}

func BenchmarkGraphGrad(b *testing.B) {
	const d = 16
	g := benchGraph(d)
	x := make([]float64, d)
	grad := make([]float64, d)
	for i := range x {
		x[i] = 0.3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Grad(x, grad)
	}
}

func BenchmarkGraphHessian(b *testing.B) {
	const d = 16
	g := benchGraph(d)
	x := make([]float64, d)
	for i := range x {
		x[i] = 0.3
	}
	h := linalg.NewMat(d, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Hessian(x, h)
	}
}
