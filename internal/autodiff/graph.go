// Package autodiff implements computational-graph automatic differentiation,
// the substrate AutoMon uses in place of JAX. A function f : R^d → R is
// expressed once as a program over Builder ops; the resulting Graph can then
// be evaluated and differentiated at arbitrary points:
//
//   - Value:    forward evaluation, O(|graph|)
//   - Grad:     reverse-mode gradient, O(|graph|)
//   - HVP:      Hessian-vector product via forward-over-reverse, O(|graph|)
//   - Hessian:  d HVPs against the basis vectors, O(d·|graph|)
//   - Tangent:  graph-level forward-mode transform producing the program for
//     s(x, v) = ∇f(x)ᵀv, which composes with HVP to give third-order
//     directional derivatives such as ∇ₓ(vᵀH(x)v)
//
// The graph also carries a polynomial-degree analysis (degree.go) used to
// detect constant Hessians, mirroring AutoMon's inspection of the Hessian
// computational graph to choose between ADCD-X and ADCD-E.
package autodiff

import (
	"fmt"
	"math"
)

// Op identifies a node's operation.
type Op uint8

// Supported operations. Binary ops use both children; unary ops use child A
// only; OpConst uses only K; OpVar uses K as the variable index.
const (
	OpConst Op = iota
	OpVar
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpNeg
	OpTanh
	OpRelu
	OpStep // heaviside: 1 if a > 0 else 0 (derivative of relu; own derivative 0)
	OpSigmoid
	OpExp
	OpLog
	OpSin
	OpCos
	OpSqrt
	OpSquare
	OpPowi // integer power, exponent in K
	OpAbs
	OpSign // sign(a) ∈ {-1, 0, 1}; derivative 0 (derivative of abs)
)

var opNames = [...]string{
	"const", "var", "add", "sub", "mul", "div", "neg", "tanh", "relu", "step",
	"sigmoid", "exp", "log", "sin", "cos", "sqrt", "square", "powi", "abs", "sign",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Ref is a handle to a node within a Graph. Refs are only meaningful for the
// graph that produced them.
type Ref int32

const invalidRef Ref = -1

type node struct {
	op   Op
	a, b Ref
	k    float64 // constant value, variable index, or integer exponent
}

// Graph is an immutable compiled program computing a scalar function of Dim
// variables. Nodes are stored in topological (construction) order.
type Graph struct {
	nodes []node
	vars  []Ref // vars[i] is the node holding variable i
	out   Ref
	pool  bufferPool
}

// Program builds a scalar expression from the variable nodes x. It is the
// user-facing "source code of f": the same role as the Python snippet passed
// to AutoMon in the paper.
type Program func(b *Builder, x []Ref) Ref

// Compile runs program against dim fresh variables and returns the resulting
// graph. It panics if the program returns an invalid ref, since that is a
// programming error in the function definition.
func Compile(dim int, program Program) *Graph {
	b := NewBuilder(dim)
	out := program(b, b.Vars())
	return b.Finish(out)
}

// Dim returns the number of input variables.
func (g *Graph) Dim() int { return len(g.vars) }

// Size returns the number of nodes in the graph.
func (g *Graph) Size() int { return len(g.nodes) }

// Builder incrementally constructs a Graph. All methods return Refs into the
// graph under construction. Builder applies light constant folding and
// algebraic simplification (x+0, x*1, x*0, …) so that structurally sparse
// programs (e.g. matrix products with zero weights) stay small.
type Builder struct {
	nodes  []node
	vars   []Ref
	consts map[float64]Ref
}

// NewBuilder returns a Builder with dim variables already created.
func NewBuilder(dim int) *Builder {
	b := &Builder{consts: make(map[float64]Ref)}
	b.vars = make([]Ref, dim)
	for i := 0; i < dim; i++ {
		b.vars[i] = b.push(node{op: OpVar, a: invalidRef, b: invalidRef, k: float64(i)})
	}
	return b
}

// Vars returns the variable refs, in index order. The returned slice must
// not be modified.
func (b *Builder) Vars() []Ref { return b.vars }

// Finish seals the builder into an immutable Graph with the given output.
func (b *Builder) Finish(out Ref) *Graph {
	if out < 0 || int(out) >= len(b.nodes) {
		panic("autodiff: Finish with invalid output ref")
	}
	g := &Graph{nodes: b.nodes, vars: b.vars, out: out}
	g.pool.size = len(b.nodes)
	return g
}

func (b *Builder) push(n node) Ref {
	b.nodes = append(b.nodes, n)
	return Ref(len(b.nodes) - 1)
}

func (b *Builder) isConst(r Ref) (float64, bool) {
	n := b.nodes[r]
	if n.op == OpConst {
		return n.k, true
	}
	return 0, false
}

// Const returns a node holding the constant v. Equal constants share a node.
func (b *Builder) Const(v float64) Ref {
	if r, ok := b.consts[v]; ok {
		return r
	}
	r := b.push(node{op: OpConst, a: invalidRef, b: invalidRef, k: v})
	b.consts[v] = r
	return r
}

// Add returns x + y.
func (b *Builder) Add(x, y Ref) Ref {
	cx, okx := b.isConst(x)
	cy, oky := b.isConst(y)
	switch {
	case okx && oky:
		return b.Const(cx + cy)
	case okx && cx == 0:
		return y
	case oky && cy == 0:
		return x
	}
	return b.push(node{op: OpAdd, a: x, b: y})
}

// Sub returns x - y.
func (b *Builder) Sub(x, y Ref) Ref {
	cx, okx := b.isConst(x)
	cy, oky := b.isConst(y)
	switch {
	case okx && oky:
		return b.Const(cx - cy)
	case oky && cy == 0:
		return x
	case okx && cx == 0:
		return b.Neg(y)
	}
	return b.push(node{op: OpSub, a: x, b: y})
}

// Mul returns x * y.
func (b *Builder) Mul(x, y Ref) Ref {
	cx, okx := b.isConst(x)
	cy, oky := b.isConst(y)
	switch {
	case okx && oky:
		return b.Const(cx * cy)
	case okx && cx == 0, oky && cy == 0:
		return b.Const(0)
	case okx && cx == 1: //automon:allow nofloateq algebraic identity 1·y = y is exact in IEEE-754
		return y
	case oky && cy == 1: //automon:allow nofloateq algebraic identity x·1 = x is exact in IEEE-754
		return x
	}
	return b.push(node{op: OpMul, a: x, b: y})
}

// Div returns x / y.
func (b *Builder) Div(x, y Ref) Ref {
	cx, okx := b.isConst(x)
	cy, oky := b.isConst(y)
	switch {
	case okx && oky && cy != 0:
		return b.Const(cx / cy)
	case oky && cy == 1: //automon:allow nofloateq algebraic identity x/1 = x is exact in IEEE-754
		return x
	}
	return b.push(node{op: OpDiv, a: x, b: y})
}

// Neg returns -x.
func (b *Builder) Neg(x Ref) Ref {
	if c, ok := b.isConst(x); ok {
		return b.Const(-c)
	}
	return b.push(node{op: OpNeg, a: x, b: invalidRef})
}

func (b *Builder) unary(op Op, x Ref, f func(float64) float64) Ref {
	if c, ok := b.isConst(x); ok {
		return b.Const(f(c))
	}
	return b.push(node{op: op, a: x, b: invalidRef})
}

// Tanh returns tanh(x).
func (b *Builder) Tanh(x Ref) Ref { return b.unary(OpTanh, x, math.Tanh) }

// Relu returns max(x, 0).
func (b *Builder) Relu(x Ref) Ref {
	return b.unary(OpRelu, x, func(v float64) float64 { return math.Max(v, 0) })
}

// Step returns 1 if x > 0 else 0.
func (b *Builder) Step(x Ref) Ref {
	return b.unary(OpStep, x, func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
}

// Sigmoid returns 1/(1+exp(-x)).
func (b *Builder) Sigmoid(x Ref) Ref {
	return b.unary(OpSigmoid, x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
}

// Exp returns e^x.
func (b *Builder) Exp(x Ref) Ref { return b.unary(OpExp, x, math.Exp) }

// Log returns the natural logarithm of x.
func (b *Builder) Log(x Ref) Ref { return b.unary(OpLog, x, math.Log) }

// Sin returns sin(x).
func (b *Builder) Sin(x Ref) Ref { return b.unary(OpSin, x, math.Sin) }

// Cos returns cos(x).
func (b *Builder) Cos(x Ref) Ref { return b.unary(OpCos, x, math.Cos) }

// Sqrt returns √x.
func (b *Builder) Sqrt(x Ref) Ref { return b.unary(OpSqrt, x, math.Sqrt) }

// Square returns x².
func (b *Builder) Square(x Ref) Ref {
	return b.unary(OpSquare, x, func(v float64) float64 { return v * v })
}

// Abs returns |x|.
func (b *Builder) Abs(x Ref) Ref { return b.unary(OpAbs, x, math.Abs) }

// Sign returns sign(x).
func (b *Builder) Sign(x Ref) Ref {
	return b.unary(OpSign, x, func(v float64) float64 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		}
		return 0
	})
}

// Powi returns x^k for integer k. k may be negative (x ≠ 0 at evaluation).
func (b *Builder) Powi(x Ref, k int) Ref {
	switch k {
	case 0:
		return b.Const(1)
	case 1:
		return x
	case 2:
		return b.Square(x)
	}
	if c, ok := b.isConst(x); ok {
		return b.Const(math.Pow(c, float64(k)))
	}
	return b.push(node{op: OpPowi, a: x, b: invalidRef, k: float64(k)})
}

// Sum returns the sum of xs (0 for empty input).
func (b *Builder) Sum(xs ...Ref) Ref {
	if len(xs) == 0 {
		return b.Const(0)
	}
	// Balanced reduction keeps the graph shallow.
	for len(xs) > 1 {
		tmp := make([]Ref, 0, (len(xs)+1)/2)
		for i := 0; i+1 < len(xs); i += 2 {
			tmp = append(tmp, b.Add(xs[i], xs[i+1]))
		}
		if len(xs)%2 == 1 {
			tmp = append(tmp, xs[len(xs)-1])
		}
		xs = tmp
	}
	return xs[0]
}

// Dot returns Σ xs[i]*ys[i]. It panics on length mismatch.
func (b *Builder) Dot(xs, ys []Ref) Ref {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("autodiff: Dot length mismatch %d vs %d", len(xs), len(ys)))
	}
	terms := make([]Ref, len(xs))
	for i := range xs {
		terms[i] = b.Mul(xs[i], ys[i])
	}
	return b.Sum(terms...)
}

// SqNorm returns Σ xs[i]².
func (b *Builder) SqNorm(xs []Ref) Ref {
	terms := make([]Ref, len(xs))
	for i := range xs {
		terms[i] = b.Square(xs[i])
	}
	return b.Sum(terms...)
}

// ConstVec returns constant nodes for each entry of v.
func (b *Builder) ConstVec(v []float64) []Ref {
	out := make([]Ref, len(v))
	for i, c := range v {
		out[i] = b.Const(c)
	}
	return out
}

// Affine returns W·x + bias as a vector of nodes, where W is rows×len(x).
func (b *Builder) Affine(w [][]float64, x []Ref, bias []float64) []Ref {
	out := make([]Ref, len(w))
	for i, row := range w {
		if len(row) != len(x) {
			panic(fmt.Sprintf("autodiff: Affine row %d has %d weights for %d inputs", i, len(row), len(x)))
		}
		terms := make([]Ref, 0, len(x)+1)
		for j, wj := range row {
			terms = append(terms, b.Mul(b.Const(wj), x[j]))
		}
		if bias != nil {
			terms = append(terms, b.Const(bias[i]))
		}
		out[i] = b.Sum(terms...)
	}
	return out
}

// Map applies a unary builder op to every element of xs.
func (b *Builder) Map(f func(Ref) Ref, xs []Ref) []Ref {
	out := make([]Ref, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}
