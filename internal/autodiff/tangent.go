package autodiff

// Tangent builds, at the graph level, the forward-mode derivative program
//
//	s(x, v) = ∇f(x)ᵀ v
//
// as a new Graph with 2d variables: the first d are x, the last d are the
// direction v. This is the graph-transform analogue of JAX's jvp, and it
// composes with the numeric differentiators: for instance, an HVP of the
// tangent graph with direction (w, 0) yields ∇ₓ(∇f(x)ᵀv)·w-style third-order
// directional derivatives. AutoMon uses it to compute the analytic gradient
// of vᵀH(x)v (Hellmann–Feynman term) inside the extreme-eigenvalue search.
func (g *Graph) Tangent() *Graph {
	d := len(g.vars)
	b := NewBuilder(2 * d)
	xs := b.Vars()[:d]
	vs := b.Vars()[d:]

	// val[i] / tan[i]: refs in the new graph for the value and tangent of
	// node i of the source graph.
	val := make([]Ref, len(g.nodes))
	tan := make([]Ref, len(g.nodes))
	zero := b.Const(0)

	for i, n := range g.nodes {
		switch n.op {
		case OpConst:
			val[i] = b.Const(n.k)
			tan[i] = zero
		case OpVar:
			val[i] = xs[int(n.k)]
			tan[i] = vs[int(n.k)]
		case OpAdd:
			val[i] = b.Add(val[n.a], val[n.b])
			tan[i] = b.Add(tan[n.a], tan[n.b])
		case OpSub:
			val[i] = b.Sub(val[n.a], val[n.b])
			tan[i] = b.Sub(tan[n.a], tan[n.b])
		case OpMul:
			val[i] = b.Mul(val[n.a], val[n.b])
			tan[i] = b.Add(b.Mul(tan[n.a], val[n.b]), b.Mul(val[n.a], tan[n.b]))
		case OpDiv:
			val[i] = b.Div(val[n.a], val[n.b])
			// (ṫa - q·ṫb)/b with q = a/b
			tan[i] = b.Div(b.Sub(tan[n.a], b.Mul(val[i], tan[n.b])), val[n.b])
		case OpNeg:
			val[i] = b.Neg(val[n.a])
			tan[i] = b.Neg(tan[n.a])
		case OpTanh:
			val[i] = b.Tanh(val[n.a])
			tan[i] = b.Mul(b.Sub(b.Const(1), b.Square(val[i])), tan[n.a])
		case OpRelu:
			val[i] = b.Relu(val[n.a])
			tan[i] = b.Mul(b.Step(val[n.a]), tan[n.a])
		case OpStep:
			val[i] = b.Step(val[n.a])
			tan[i] = zero
		case OpSigmoid:
			val[i] = b.Sigmoid(val[n.a])
			tan[i] = b.Mul(b.Mul(val[i], b.Sub(b.Const(1), val[i])), tan[n.a])
		case OpExp:
			val[i] = b.Exp(val[n.a])
			tan[i] = b.Mul(val[i], tan[n.a])
		case OpLog:
			val[i] = b.Log(val[n.a])
			tan[i] = b.Div(tan[n.a], val[n.a])
		case OpSin:
			val[i] = b.Sin(val[n.a])
			tan[i] = b.Mul(b.Cos(val[n.a]), tan[n.a])
		case OpCos:
			val[i] = b.Cos(val[n.a])
			tan[i] = b.Neg(b.Mul(b.Sin(val[n.a]), tan[n.a]))
		case OpSqrt:
			val[i] = b.Sqrt(val[n.a])
			tan[i] = b.Div(tan[n.a], b.Mul(b.Const(2), val[i]))
		case OpSquare:
			val[i] = b.Square(val[n.a])
			tan[i] = b.Mul(b.Mul(b.Const(2), val[n.a]), tan[n.a])
		case OpPowi:
			k := int(n.k)
			val[i] = b.Powi(val[n.a], k)
			tan[i] = b.Mul(b.Mul(b.Const(n.k), b.Powi(val[n.a], k-1)), tan[n.a])
		case OpAbs:
			val[i] = b.Abs(val[n.a])
			tan[i] = b.Mul(b.Sign(val[n.a]), tan[n.a])
		case OpSign:
			val[i] = b.Sign(val[n.a])
			tan[i] = zero
		default:
			panic("autodiff: unknown op in Tangent: " + n.op.String())
		}
	}
	return b.Finish(tan[g.out])
}
