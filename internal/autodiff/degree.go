package autodiff

// Degree analysis: each node is assigned a conservative polynomial degree.
// A graph whose output has degree ≤ 2 computes a (multivariate) polynomial of
// degree at most 2, so its Hessian is constant in x. AutoMon uses this to
// decide automatically between ADCD-E (constant Hessian, Lemma 2) and ADCD-X
// (general functions, Lemma 1), mirroring the paper's inspection of the
// Hessian computational graph.

// NonPolynomial is the degree reported for graphs that are not polynomials
// in the inputs (or whose degree exceeds maxTrackedDegree).
const NonPolynomial = 1 << 20

const maxTrackedDegree = 64

// Degree returns the conservative polynomial degree of the graph's output:
// 0 for constants, 1 for affine functions, 2 for quadratics, and so on, or
// NonPolynomial when the output is not a polynomial in the variables. The
// analysis is sound (never underestimates) but may overestimate: for example
// x*x - x² is reported as degree 2 even though it is identically zero.
func (g *Graph) Degree() int {
	deg := make([]int, len(g.nodes))
	for i, n := range g.nodes {
		switch n.op {
		case OpConst:
			deg[i] = 0
		case OpVar:
			deg[i] = 1
		case OpAdd, OpSub:
			deg[i] = maxDeg(deg[n.a], deg[n.b])
		case OpMul:
			deg[i] = sumDeg(deg[n.a], deg[n.b])
		case OpDiv:
			if deg[n.b] == 0 {
				deg[i] = deg[n.a]
			} else {
				deg[i] = NonPolynomial
			}
		case OpNeg:
			deg[i] = deg[n.a]
		case OpSquare:
			deg[i] = sumDeg(deg[n.a], deg[n.a])
		case OpPowi:
			k := int(n.k)
			switch {
			case deg[n.a] == 0:
				deg[i] = 0
			case k < 0:
				deg[i] = NonPolynomial
			default:
				d := deg[n.a]
				total := 0
				for j := 0; j < k; j++ {
					total = sumDeg(total, d)
				}
				deg[i] = total
			}
		default:
			// Transcendental / non-smooth op: polynomial only when its
			// argument is constant.
			if deg[n.a] == 0 {
				deg[i] = 0
			} else {
				deg[i] = NonPolynomial
			}
		}
	}
	return deg[g.out]
}

// HasConstantHessian reports whether the Hessian of the graph's function is
// provably independent of x (degree ≤ 2). This is the trigger for ADCD-E.
func (g *Graph) HasConstantHessian() bool {
	d := g.Degree()
	return d <= 2
}

func maxDeg(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sumDeg(a, b int) int {
	if a >= NonPolynomial || b >= NonPolynomial {
		return NonPolynomial
	}
	s := a + b
	if s > maxTrackedDegree {
		return NonPolynomial
	}
	return s
}
