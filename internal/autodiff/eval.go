package autodiff

import (
	"fmt"
	"math"
	"sync"

	"automon/internal/linalg"
)

// bufferPool hands out float64 scratch slices sized to the graph. Graphs are
// shared between goroutines (e.g. simulated nodes), so scratch space is
// pooled rather than stored on the Graph. The pool stores *[]float64: a bare
// slice would be boxed into an interface on every Put, costing one heap
// allocation per evaluation and breaking the zero-alloc monitoring path.
type bufferPool struct {
	size int
	pool sync.Pool
}

// get returns a dirty buffer: callers that fully overwrite it (forward
// passes) skip the clearing cost.
func (p *bufferPool) get() *[]float64 {
	if v := p.pool.Get(); v != nil {
		return v.(*[]float64)
	}
	//automon:allow hotpath pool-miss fallback: first evaluation per P warms the pool; steady state never reaches this line
	s := make([]float64, p.size)
	return &s
}

// getZeroed returns a cleared buffer for accumulator passes (adjoints) that
// read entries before writing them.
func (p *bufferPool) getZeroed() *[]float64 {
	buf := p.get()
	s := *buf
	for i := range s {
		s[i] = 0
	}
	return buf
}

func (p *bufferPool) put(buf *[]float64) { p.pool.Put(buf) }

func (g *Graph) checkDim(x []float64) {
	if len(x) != len(g.vars) {
		panic(fmt.Sprintf("autodiff: input has %d entries, graph has %d variables", len(x), len(g.vars)))
	}
}

// Value evaluates f(x).
//
//automon:hotpath
func (g *Graph) Value(x []float64) float64 {
	g.checkDim(x)
	valBuf := g.pool.get()
	defer g.pool.put(valBuf)
	val := *valBuf
	g.forward(x, val)
	return val[g.out]
}

func (g *Graph) forward(x, val []float64) {
	for i, n := range g.nodes {
		switch n.op {
		case OpConst:
			val[i] = n.k
		case OpVar:
			val[i] = x[int(n.k)]
		case OpAdd:
			val[i] = val[n.a] + val[n.b]
		case OpSub:
			val[i] = val[n.a] - val[n.b]
		case OpMul:
			val[i] = val[n.a] * val[n.b]
		case OpDiv:
			val[i] = val[n.a] / val[n.b]
		case OpNeg:
			val[i] = -val[n.a]
		case OpTanh:
			val[i] = math.Tanh(val[n.a])
		case OpRelu:
			val[i] = math.Max(val[n.a], 0)
		case OpStep:
			if val[n.a] > 0 {
				val[i] = 1
			} else {
				val[i] = 0
			}
		case OpSigmoid:
			val[i] = 1 / (1 + math.Exp(-val[n.a]))
		case OpExp:
			val[i] = math.Exp(val[n.a])
		case OpLog:
			val[i] = math.Log(val[n.a])
		case OpSin:
			val[i] = math.Sin(val[n.a])
		case OpCos:
			val[i] = math.Cos(val[n.a])
		case OpSqrt:
			val[i] = math.Sqrt(val[n.a])
		case OpSquare:
			v := val[n.a]
			val[i] = v * v
		case OpPowi:
			val[i] = powi(val[n.a], int(n.k))
		case OpAbs:
			val[i] = math.Abs(val[n.a])
		case OpSign:
			v := val[n.a]
			switch {
			case v > 0:
				val[i] = 1
			case v < 0:
				val[i] = -1
			default:
				val[i] = 0
			}
		default:
			panic("autodiff: unknown op " + n.op.String())
		}
	}
}

func powi(x float64, k int) float64 {
	if k < 0 {
		return 1 / powi(x, -k)
	}
	r := 1.0
	for k > 0 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
		k >>= 1
	}
	return r
}

// partials returns the local derivatives ∂n/∂a and ∂n/∂b given the forward
// values of the children and of the node itself.
func (n *node) partials(va, vb, vn float64) (pa, pb float64) {
	switch n.op {
	case OpAdd:
		return 1, 1
	case OpSub:
		return 1, -1
	case OpMul:
		return vb, va
	case OpDiv:
		return 1 / vb, -va / (vb * vb)
	case OpNeg:
		return -1, 0
	case OpTanh:
		return 1 - vn*vn, 0
	case OpRelu:
		if va > 0 {
			return 1, 0
		}
		return 0, 0
	case OpStep, OpSign:
		return 0, 0
	case OpSigmoid:
		return vn * (1 - vn), 0
	case OpExp:
		return vn, 0
	case OpLog:
		return 1 / va, 0
	case OpSin:
		return math.Cos(va), 0
	case OpCos:
		return -math.Sin(va), 0
	case OpSqrt:
		return 0.5 / vn, 0
	case OpSquare:
		return 2 * va, 0
	case OpPowi:
		return n.k * powi(va, int(n.k)-1), 0
	case OpAbs:
		switch {
		case va > 0:
			return 1, 0
		case va < 0:
			return -1, 0
		}
		return 0, 0
	}
	return 0, 0
}

// Grad evaluates f(x) and stores ∇f(x) into grad, returning f(x).
// grad must have length Dim.
//
//automon:hotpath
func (g *Graph) Grad(x, grad []float64) float64 {
	g.checkDim(x)
	if len(grad) != len(g.vars) {
		panic("autodiff: grad buffer has wrong length")
	}
	valBuf, adjBuf := g.pool.get(), g.pool.getZeroed()
	defer g.pool.put(valBuf)
	defer g.pool.put(adjBuf)
	val, adj := *valBuf, *adjBuf
	g.forward(x, val)
	adj[g.out] = 1
	for i := len(g.nodes) - 1; i >= 0; i-- {
		a := adj[i]
		if a == 0 {
			continue
		}
		n := &g.nodes[i]
		switch n.op {
		case OpConst, OpVar:
			continue
		}
		var vb float64
		if n.b >= 0 {
			vb = val[n.b]
		}
		pa, pb := n.partials(val[n.a], vb, val[i])
		adj[n.a] += a * pa
		if n.b >= 0 {
			adj[n.b] += a * pb
		}
	}
	for i, vr := range g.vars {
		grad[i] = adj[vr]
	}
	return val[g.out]
}

// HVP stores H(x)·v into out, where H is the Hessian of f. It uses
// forward-over-reverse: a forward pass with tangents seeded by v, then a
// reverse pass propagating both adjoints and their tangents. out must have
// length Dim and must not alias v.
func (g *Graph) HVP(x, v, out []float64) {
	g.checkDim(x)
	if len(v) != len(g.vars) || len(out) != len(g.vars) {
		panic("autodiff: HVP buffer has wrong length")
	}
	valBuf, tanBuf := g.pool.get(), g.pool.get()
	adjBuf, adjTBuf := g.pool.getZeroed(), g.pool.getZeroed()
	defer g.pool.put(valBuf)
	defer g.pool.put(tanBuf)
	defer g.pool.put(adjBuf)
	defer g.pool.put(adjTBuf)
	val, tan := *valBuf, *tanBuf
	adj, adjT := *adjBuf, *adjTBuf

	// Forward pass with tangents.
	for i, n := range g.nodes {
		switch n.op {
		case OpConst:
			val[i], tan[i] = n.k, 0
		case OpVar:
			val[i], tan[i] = x[int(n.k)], v[int(n.k)]
		default:
			var vb, tb float64
			if n.b >= 0 {
				vb, tb = val[n.b], tan[n.b]
			}
			val[i], tan[i] = n.dualForward(val[n.a], tan[n.a], vb, tb)
		}
	}

	// Reverse pass with dual adjoints: for child c of node n,
	//   adj[c]  += adj[n]·p     and   adjT[c] += adjT[n]·p + adj[n]·ṗ
	// where (p, ṗ) is the local partial and its directional derivative.
	adj[g.out] = 1
	for i := len(g.nodes) - 1; i >= 0; i-- {
		a, at := adj[i], adjT[i]
		if a == 0 && at == 0 {
			continue
		}
		n := &g.nodes[i]
		switch n.op {
		case OpConst, OpVar:
			continue
		}
		var vb, tb float64
		if n.b >= 0 {
			vb, tb = val[n.b], tan[n.b]
		}
		pa, dpa, pb, dpb := n.dualPartials(val[n.a], tan[n.a], vb, tb, val[i], tan[i])
		adj[n.a] += a * pa
		adjT[n.a] += at*pa + a*dpa
		if n.b >= 0 {
			adj[n.b] += a * pb
			adjT[n.b] += at*pb + a*dpb
		}
	}
	for i, vr := range g.vars {
		out[i] = adjT[vr]
	}
}

// dualForward computes the node value and its tangent given dual inputs.
func (n *node) dualForward(va, ta, vb, tb float64) (v, t float64) {
	switch n.op {
	case OpAdd:
		return va + vb, ta + tb
	case OpSub:
		return va - vb, ta - tb
	case OpMul:
		return va * vb, ta*vb + va*tb
	case OpDiv:
		v = va / vb
		return v, (ta - v*tb) / vb
	case OpNeg:
		return -va, -ta
	case OpTanh:
		v = math.Tanh(va)
		return v, (1 - v*v) * ta
	case OpRelu:
		if va > 0 {
			return va, ta
		}
		return 0, 0
	case OpStep:
		if va > 0 {
			return 1, 0
		}
		return 0, 0
	case OpSigmoid:
		v = 1 / (1 + math.Exp(-va))
		return v, v * (1 - v) * ta
	case OpExp:
		v = math.Exp(va)
		return v, v * ta
	case OpLog:
		return math.Log(va), ta / va
	case OpSin:
		return math.Sin(va), math.Cos(va) * ta
	case OpCos:
		return math.Cos(va), -math.Sin(va) * ta
	case OpSqrt:
		v = math.Sqrt(va)
		return v, ta / (2 * v)
	case OpSquare:
		return va * va, 2 * va * ta
	case OpPowi:
		return powi(va, int(n.k)), n.k * powi(va, int(n.k)-1) * ta
	case OpAbs:
		switch {
		case va > 0:
			return va, ta
		case va < 0:
			return -va, -ta
		}
		return 0, 0
	case OpSign:
		switch {
		case va > 0:
			return 1, 0
		case va < 0:
			return -1, 0
		}
		return 0, 0
	}
	panic("autodiff: unknown op in dualForward: " + n.op.String())
}

// dualPartials returns the local partials (pa, pb) and their directional
// derivatives (dpa, dpb) along the forward tangents.
func (n *node) dualPartials(va, ta, vb, tb, vn, tn float64) (pa, dpa, pb, dpb float64) {
	switch n.op {
	case OpAdd:
		return 1, 0, 1, 0
	case OpSub:
		return 1, 0, -1, 0
	case OpMul:
		return vb, tb, va, ta
	case OpDiv:
		pa = 1 / vb
		dpa = -tb / (vb * vb)
		pb = -va / (vb * vb)
		dpb = (-ta*vb + 2*va*tb) / (vb * vb * vb)
		return pa, dpa, pb, dpb
	case OpNeg:
		return -1, 0, 0, 0
	case OpTanh:
		pa = 1 - vn*vn
		return pa, -2 * vn * tn, 0, 0
	case OpRelu:
		if va > 0 {
			return 1, 0, 0, 0
		}
		return 0, 0, 0, 0
	case OpStep, OpSign:
		return 0, 0, 0, 0
	case OpSigmoid:
		pa = vn * (1 - vn)
		return pa, tn * (1 - 2*vn), 0, 0
	case OpExp:
		return vn, tn, 0, 0
	case OpLog:
		return 1 / va, -ta / (va * va), 0, 0
	case OpSin:
		return math.Cos(va), -math.Sin(va) * ta, 0, 0
	case OpCos:
		return -math.Sin(va), -math.Cos(va) * ta, 0, 0
	case OpSqrt:
		pa = 0.5 / vn
		return pa, -0.5 * tn / (vn * vn), 0, 0
	case OpSquare:
		return 2 * va, 2 * ta, 0, 0
	case OpPowi:
		k := n.k
		pa = k * powi(va, int(n.k)-1)
		dpa = k * (k - 1) * powi(va, int(n.k)-2) * ta
		return pa, dpa, 0, 0
	case OpAbs:
		switch {
		case va > 0:
			return 1, 0, 0, 0
		case va < 0:
			return -1, 0, 0, 0
		}
		return 0, 0, 0, 0
	}
	panic("autodiff: unknown op in dualPartials: " + n.op.String())
}

// Hessian evaluates the full d×d Hessian of f at x into h via d
// Hessian-vector products, then symmetrizes to wash out round-off.
//
//automon:hotpath
func (g *Graph) Hessian(x []float64, h *linalg.Mat) {
	d := len(g.vars)
	if h.Rows != d || h.Cols != d {
		panic("autodiff: Hessian matrix has wrong shape")
	}
	vBuf, colBuf := g.pool.get(), g.pool.get()
	defer g.pool.put(vBuf)
	defer g.pool.put(colBuf)
	// Pool buffers are node-count sized (≥ d); use d-length prefixes. v must
	// start zeroed — the loop below keeps exactly one basis entry set.
	v, col := (*vBuf)[:d], (*colBuf)[:d]
	for i := range v {
		v[i] = 0
	}
	for j := 0; j < d; j++ {
		v[j] = 1
		g.HVP(x, v, col)
		v[j] = 0
		for i := 0; i < d; i++ {
			h.Set(i, j, col[i])
		}
	}
	h.Symmetrize()
}
