package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"automon/internal/linalg"
)

// testFn bundles a program with a reference implementation and a domain for
// sampling test points.
type testFn struct {
	name    string
	dim     int
	program Program
	ref     func(x []float64) float64
	lo, hi  float64 // sampling box per coordinate
	tol     float64
}

func testFns() []testFn {
	return []testFn{
		{
			name: "affine", dim: 3, lo: -2, hi: 2, tol: 1e-7,
			program: func(b *Builder, x []Ref) Ref {
				// 2x0 - 3x1 + 0.5x2 + 7
				return b.Sum(b.Mul(b.Const(2), x[0]), b.Mul(b.Const(-3), x[1]), b.Mul(b.Const(0.5), x[2]), b.Const(7))
			},
			ref: func(x []float64) float64 { return 2*x[0] - 3*x[1] + 0.5*x[2] + 7 },
		},
		{
			name: "quadratic", dim: 2, lo: -2, hi: 2, tol: 1e-6,
			program: func(b *Builder, x []Ref) Ref {
				// x0² + 3·x0·x1 - x1²
				return b.Sub(b.Add(b.Square(x[0]), b.Mul(b.Const(3), b.Mul(x[0], x[1]))), b.Square(x[1]))
			},
			ref: func(x []float64) float64 { return x[0]*x[0] + 3*x[0]*x[1] - x[1]*x[1] },
		},
		{
			name: "innerproduct", dim: 6, lo: -2, hi: 2, tol: 1e-6,
			program: func(b *Builder, x []Ref) Ref {
				return b.Dot(x[:3], x[3:])
			},
			ref: func(x []float64) float64 { return x[0]*x[3] + x[1]*x[4] + x[2]*x[5] },
		},
		{
			name: "rosenbrock", dim: 2, lo: -1.5, hi: 1.5, tol: 1e-5,
			program: func(b *Builder, x []Ref) Ref {
				a := b.Square(b.Sub(b.Const(1), x[0]))
				c := b.Mul(b.Const(100), b.Square(b.Sub(x[1], b.Square(x[0]))))
				return b.Add(a, c)
			},
			ref: func(x []float64) float64 {
				return (1-x[0])*(1-x[0]) + 100*(x[1]-x[0]*x[0])*(x[1]-x[0]*x[0])
			},
		},
		{
			name: "sin", dim: 1, lo: 0.2, hi: 3, tol: 1e-7,
			program: func(b *Builder, x []Ref) Ref { return b.Sin(x[0]) },
			ref:     func(x []float64) float64 { return math.Sin(x[0]) },
		},
		{
			name: "tanh-mlp", dim: 3, lo: -1, hi: 1, tol: 1e-6,
			program: func(b *Builder, x []Ref) Ref {
				w1 := [][]float64{{0.3, -0.7, 0.2}, {1.1, 0.4, -0.5}}
				h := b.Map(b.Tanh, b.Affine(w1, x, []float64{0.1, -0.2}))
				w2 := [][]float64{{0.9, -1.3}}
				return b.Affine(w2, h, []float64{0.05})[0]
			},
			ref: func(x []float64) float64 {
				h0 := math.Tanh(0.3*x[0] - 0.7*x[1] + 0.2*x[2] + 0.1)
				h1 := math.Tanh(1.1*x[0] + 0.4*x[1] - 0.5*x[2] - 0.2)
				return 0.9*h0 - 1.3*h1 + 0.05
			},
		},
		{
			name: "kld-term", dim: 2, lo: 0.1, hi: 1, tol: 1e-5,
			program: func(b *Builder, x []Ref) Ref {
				// p·log(p/q)
				return b.Mul(x[0], b.Log(b.Div(x[0], x[1])))
			},
			ref: func(x []float64) float64 { return x[0] * math.Log(x[0]/x[1]) },
		},
		{
			name: "exp-sqrt", dim: 2, lo: 0.3, hi: 2, tol: 1e-5,
			program: func(b *Builder, x []Ref) Ref {
				return b.Mul(b.Exp(b.Neg(x[0])), b.Sqrt(x[1]))
			},
			ref: func(x []float64) float64 { return math.Exp(-x[0]) * math.Sqrt(x[1]) },
		},
		{
			name: "sigmoid-relu", dim: 2, lo: 0.1, hi: 2, tol: 1e-5,
			program: func(b *Builder, x []Ref) Ref {
				return b.Sigmoid(b.Add(b.Relu(x[0]), b.Mul(b.Const(0.5), x[1])))
			},
			ref: func(x []float64) float64 {
				r := math.Max(x[0], 0)
				return 1 / (1 + math.Exp(-(r + 0.5*x[1])))
			},
		},
		{
			name: "powi-div", dim: 2, lo: 0.5, hi: 2, tol: 1e-5,
			program: func(b *Builder, x []Ref) Ref {
				return b.Div(b.Powi(x[0], 3), b.Powi(x[1], 2))
			},
			ref: func(x []float64) float64 { return x[0] * x[0] * x[0] / (x[1] * x[1]) },
		},
		{
			name: "cos-square", dim: 1, lo: -2, hi: 2, tol: 1e-6,
			program: func(b *Builder, x []Ref) Ref { return b.Square(b.Cos(x[0])) },
			ref:     func(x []float64) float64 { c := math.Cos(x[0]); return c * c },
		},
		{
			name: "abs-mix", dim: 2, lo: 0.2, hi: 2, tol: 1e-6,
			program: func(b *Builder, x []Ref) Ref {
				return b.Add(b.Abs(x[0]), b.Mul(b.Sign(x[0]), b.Square(x[1])))
			},
			ref: func(x []float64) float64 {
				s := 0.0
				if x[0] > 0 {
					s = 1
				} else if x[0] < 0 {
					s = -1
				}
				return math.Abs(x[0]) + s*x[1]*x[1]
			},
		},
	}
}

func samplePoint(rng *rand.Rand, fn testFn) []float64 {
	x := make([]float64, fn.dim)
	for i := range x {
		x[i] = fn.lo + rng.Float64()*(fn.hi-fn.lo)
	}
	return x
}

func fdGrad(f func([]float64) float64, x []float64, h float64) []float64 {
	g := make([]float64, len(x))
	xp := append([]float64(nil), x...)
	for i := range x {
		xp[i] = x[i] + h
		fp := f(xp)
		xp[i] = x[i] - h
		fm := f(xp)
		xp[i] = x[i]
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

func fdHessian(f func([]float64) float64, x []float64, h float64) *linalg.Mat {
	d := len(x)
	m := linalg.NewMat(d, d)
	xp := append([]float64(nil), x...)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			xp[i] += h
			xp[j] += h
			fpp := f(xp)
			xp[j] -= 2 * h
			fpm := f(xp)
			xp[i] -= 2 * h
			fmm := f(xp)
			xp[j] += 2 * h
			fmp := f(xp)
			xp[i], xp[j] = x[i], x[j]
			m.Set(i, j, (fpp-fpm-fmp+fmm)/(4*h*h))
		}
	}
	return m
}

func TestValueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range testFns() {
		g := Compile(fn.dim, fn.program)
		for trial := 0; trial < 20; trial++ {
			x := samplePoint(rng, fn)
			got := g.Value(x)
			want := fn.ref(x)
			if math.Abs(got-want) > fn.tol*(1+math.Abs(want)) {
				t.Fatalf("%s: Value(%v) = %v, want %v", fn.name, x, got, want)
			}
		}
	}
}

func TestGradMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fn := range testFns() {
		g := Compile(fn.dim, fn.program)
		grad := make([]float64, fn.dim)
		for trial := 0; trial < 10; trial++ {
			x := samplePoint(rng, fn)
			v := g.Grad(x, grad)
			if math.Abs(v-fn.ref(x)) > fn.tol*(1+math.Abs(v)) {
				t.Fatalf("%s: Grad returned value %v, want %v", fn.name, v, fn.ref(x))
			}
			want := fdGrad(fn.ref, x, 1e-5)
			for i := range grad {
				if math.Abs(grad[i]-want[i]) > 1e-4*(1+math.Abs(want[i])) {
					t.Fatalf("%s: grad[%d] = %v, want %v (x=%v)", fn.name, i, grad[i], want[i], x)
				}
			}
		}
	}
}

func TestHVPMatchesFiniteDifferenceHessian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fn := range testFns() {
		if fn.name == "sigmoid-relu" {
			continue // relu kink can land inside the FD stencil
		}
		g := Compile(fn.dim, fn.program)
		for trial := 0; trial < 5; trial++ {
			x := samplePoint(rng, fn)
			v := make([]float64, fn.dim)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			got := make([]float64, fn.dim)
			g.HVP(x, v, got)
			h := fdHessian(fn.ref, x, 1e-4)
			want := make([]float64, fn.dim)
			h.MulVec(want, v)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-3*(1+math.Abs(want[i])) {
					t.Fatalf("%s: HVP[%d] = %v, want %v (x=%v, v=%v)", fn.name, i, got[i], want[i], x, v)
				}
			}
		}
	}
}

func TestHessianSymmetricAndMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, fn := range testFns() {
		if fn.name == "sigmoid-relu" {
			continue
		}
		g := Compile(fn.dim, fn.program)
		x := samplePoint(rng, fn)
		h := linalg.NewMat(fn.dim, fn.dim)
		g.Hessian(x, h)
		for i := 0; i < fn.dim; i++ {
			for j := 0; j < fn.dim; j++ {
				if h.At(i, j) != h.At(j, i) {
					t.Fatalf("%s: Hessian not symmetric at (%d,%d)", fn.name, i, j)
				}
			}
		}
		want := fdHessian(fn.ref, x, 1e-4)
		for i := 0; i < fn.dim; i++ {
			for j := 0; j < fn.dim; j++ {
				if math.Abs(h.At(i, j)-want.At(i, j)) > 2e-3*(1+math.Abs(want.At(i, j))) {
					t.Fatalf("%s: H[%d,%d] = %v, want %v", fn.name, i, j, h.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestHessianKnownQuadratic(t *testing.T) {
	// f = x0² + 3·x0·x1 - x1² has constant Hessian [[2,3],[3,-2]].
	g := Compile(2, func(b *Builder, x []Ref) Ref {
		return b.Sub(b.Add(b.Square(x[0]), b.Mul(b.Const(3), b.Mul(x[0], x[1]))), b.Square(x[1]))
	})
	h := linalg.NewMat(2, 2)
	for _, x := range [][]float64{{0, 0}, {1, -2}, {5, 7}} {
		g.Hessian(x, h)
		want := [][]float64{{2, 3}, {3, -2}}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if math.Abs(h.At(i, j)-want[i][j]) > 1e-9 {
					t.Fatalf("H(%v)[%d,%d] = %v, want %v", x, i, j, h.At(i, j), want[i][j])
				}
			}
		}
	}
}

func TestTangentComputesDirectionalDerivative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, fn := range testFns() {
		g := Compile(fn.dim, fn.program)
		tg := g.Tangent()
		if tg.Dim() != 2*fn.dim {
			t.Fatalf("%s: tangent graph dim = %d, want %d", fn.name, tg.Dim(), 2*fn.dim)
		}
		grad := make([]float64, fn.dim)
		for trial := 0; trial < 5; trial++ {
			x := samplePoint(rng, fn)
			v := make([]float64, fn.dim)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			g.Grad(x, grad)
			want := 0.0
			for i := range grad {
				want += grad[i] * v[i]
			}
			xv := append(append([]float64(nil), x...), v...)
			got := tg.Value(xv)
			if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("%s: tangent = %v, want %v", fn.name, got, want)
			}
		}
	}
}

func TestTangentHVPGivesThirdOrder(t *testing.T) {
	// For f = x³ (d=1): s(x,v) = 3x²v; ∇ₓs = 6xv. HVP of tangent graph with
	// direction (w, 0): Hess_{(x,v)}(s)·(w,0) picks out ∂²s/∂x² ·w = 6vw and
	// ∂²s/∂v∂x·w = 6xw... verify first component = 6·x·v-free... Construct
	// concretely and compare against analytic values.
	g := Compile(1, func(b *Builder, x []Ref) Ref { return b.Powi(x[0], 3) })
	tg := g.Tangent()
	x, v, w := 1.5, 2.0, 1.0
	in := []float64{x, v}
	dir := []float64{w, 0}
	out := make([]float64, 2)
	tg.HVP(in, dir, out)
	// s(x,v)=3x²v; ∂²s/∂x² = 6xv → out[0] = 6xv·w; ∂²s/∂v∂x = 6x·... = 6x·w·... wait:
	// Hessian of s wrt (x,v): [[6xv, 3x²·2/ x... ]] compute: s_x=6xv? No: s_x = 6x·v? s=3x²v, s_x=6xv, s_xx=6v, s_xv=6x, s_vv=0.
	// H·(w,0) = (s_xx·w, s_xv·w) = (6v·w, 6x·w).
	if math.Abs(out[0]-6*v*w) > 1e-9 {
		t.Fatalf("third-order x-component = %v, want %v", out[0], 6*v*w)
	}
	if math.Abs(out[1]-6*x*w) > 1e-9 {
		t.Fatalf("third-order v-component = %v, want %v", out[1], 6*x*w)
	}
}

func TestDegreeAnalysis(t *testing.T) {
	cases := []struct {
		name    string
		dim     int
		program Program
		want    int
	}{
		{"const", 1, func(b *Builder, x []Ref) Ref { return b.Const(3) }, 0},
		{"linear", 2, func(b *Builder, x []Ref) Ref { return b.Add(x[0], x[1]) }, 1},
		{"quadratic", 2, func(b *Builder, x []Ref) Ref { return b.Mul(x[0], x[1]) }, 2},
		{"square", 1, func(b *Builder, x []Ref) Ref { return b.Square(x[0]) }, 2},
		{"cubic", 1, func(b *Builder, x []Ref) Ref { return b.Powi(x[0], 3) }, 3},
		{"div-const", 1, func(b *Builder, x []Ref) Ref { return b.Div(x[0], b.Const(2)) }, 1},
		{"div-var", 2, func(b *Builder, x []Ref) Ref { return b.Div(x[0], x[1]) }, NonPolynomial},
		{"sin", 1, func(b *Builder, x []Ref) Ref { return b.Sin(x[0]) }, NonPolynomial},
		{"sin-const", 1, func(b *Builder, x []Ref) Ref { return b.Mul(x[0], b.Sin(b.Const(1))) }, 1},
		{"tanh", 1, func(b *Builder, x []Ref) Ref { return b.Tanh(x[0]) }, NonPolynomial},
	}
	for _, c := range cases {
		g := Compile(c.dim, c.program)
		if got := g.Degree(); got != c.want {
			t.Errorf("%s: Degree = %d, want %d", c.name, got, c.want)
		}
	}
	// Constant-Hessian detection
	quad := Compile(2, func(b *Builder, x []Ref) Ref { return b.Mul(x[0], x[1]) })
	if !quad.HasConstantHessian() {
		t.Error("x0·x1 should have constant Hessian")
	}
	ros := Compile(2, func(b *Builder, x []Ref) Ref {
		return b.Add(b.Square(b.Sub(b.Const(1), x[0])), b.Mul(b.Const(100), b.Square(b.Sub(x[1], b.Square(x[0])))))
	})
	if ros.HasConstantHessian() {
		t.Error("Rosenbrock (degree 4) must not report constant Hessian")
	}
}

func TestConstantFolding(t *testing.T) {
	g := Compile(1, func(b *Builder, x []Ref) Ref {
		zero := b.Const(0)
		one := b.Const(1)
		// ((x + 0) * 1 - 0) + (2 + 3)
		return b.Add(b.Sub(b.Mul(b.Add(x[0], zero), one), zero), b.Add(b.Const(2), b.Const(3)))
	})
	// One var node, two const nodes (0 folded away may remain as node but
	// unused), and a single add for x+5. Just check small size and value.
	// Dead constant nodes (2 and 3 before folding) may remain; what matters
	// is that no add/mul/sub chain survived.
	if g.Size() > 8 {
		t.Fatalf("folding failed: graph has %d nodes", g.Size())
	}
	if got := g.Value([]float64{4}); got != 9 {
		t.Fatalf("Value = %v, want 9", got)
	}
}

func TestInputDimPanic(t *testing.T) {
	g := Compile(2, func(b *Builder, x []Ref) Ref { return b.Add(x[0], x[1]) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input length")
		}
	}()
	g.Value([]float64{1})
}

func TestReluAndStepSemantics(t *testing.T) {
	g := Compile(1, func(b *Builder, x []Ref) Ref { return b.Relu(x[0]) })
	grad := make([]float64, 1)
	if v := g.Grad([]float64{2}, grad); v != 2 || grad[0] != 1 {
		t.Fatalf("relu(2): v=%v grad=%v", v, grad[0])
	}
	if v := g.Grad([]float64{-2}, grad); v != 0 || grad[0] != 0 {
		t.Fatalf("relu(-2): v=%v grad=%v", v, grad[0])
	}
	// Second derivative of relu is 0 everywhere it is defined.
	out := make([]float64, 1)
	g.HVP([]float64{2}, []float64{1}, out)
	if out[0] != 0 {
		t.Fatalf("relu HVP = %v, want 0", out[0])
	}
}

func TestConcurrentEvaluation(t *testing.T) {
	g := Compile(4, func(b *Builder, x []Ref) Ref { return b.SqNorm(x) })
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			grad := make([]float64, 4)
			for i := 0; i < 200; i++ {
				x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
				v := g.Grad(x, grad)
				want := x[0]*x[0] + x[1]*x[1] + x[2]*x[2] + x[3]*x[3]
				if math.Abs(v-want) > 1e-9 {
					done <- errFmt("concurrent value mismatch")
					return
				}
				for j := range x {
					if math.Abs(grad[j]-2*x[j]) > 1e-9 {
						done <- errFmt("concurrent grad mismatch")
						return
					}
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errFmt string

func (e errFmt) Error() string { return string(e) }
