package autodiff

// Read-only structural access to a compiled graph, for external evaluators
// that re-interpret the program under a different arithmetic (e.g.
// internal/interval's certified Hessian enclosures). The node order exposed
// here is the topological storage order every evaluation pass in this
// package uses, so an external pass that mirrors forward/adjoint loops over
// NodeSpecs computes bit-identical results at degenerate inputs.

// NodeSpec is a read-only view of one graph node. A and B are child node
// indices into the topological order, or -1 when the slot is unused (unary
// ops, constants, variables). K carries the constant value (OpConst), the
// variable index (OpVar), or the integer exponent (OpPowi).
type NodeSpec struct {
	Op   Op
	A, B int32
	K    float64
}

// AppendNodeSpecs appends one NodeSpec per node in topological order and
// returns the extended slice.
func (g *Graph) AppendNodeSpecs(dst []NodeSpec) []NodeSpec {
	for _, n := range g.nodes {
		dst = append(dst, NodeSpec{Op: n.op, A: int32(n.a), B: int32(n.b), K: n.k})
	}
	return dst
}

// OutputIndex returns the node index holding the graph's output.
func (g *Graph) OutputIndex() int { return int(g.out) }

// VarNodeIndex returns the node index holding variable i.
func (g *Graph) VarNodeIndex(i int) int { return int(g.vars[i]) }
