package autodiff

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type smallVec []float64

// Generate implements quick.Generator with bounded, finite entries.
func (smallVec) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(8)
	v := make(smallVec, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return reflect.ValueOf(v)
}

// TestQuickSumMatchesNaive: the balanced-reduction Sum equals a sequential
// sum for arbitrary inputs.
func TestQuickSumMatchesNaive(t *testing.T) {
	check := func(v smallVec) bool {
		g := Compile(len(v), func(b *Builder, x []Ref) Ref { return b.Sum(x...) })
		var want float64
		for _, e := range v {
			want += e
		}
		got := g.Value([]float64(v))
		return math.Abs(got-want) <= 1e-12*(1+math.Abs(want))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDotSymmetry: Dot(x, y) == Dot(y, x) and matches the naive sum.
func TestQuickDotSymmetry(t *testing.T) {
	check := func(x smallVec) bool {
		n := len(x)
		y := make([]float64, n)
		for i := range y {
			y[i] = float64(i) - 1.5
		}
		g1 := Compile(2*n, func(b *Builder, v []Ref) Ref { return b.Dot(v[:n], v[n:]) })
		g2 := Compile(2*n, func(b *Builder, v []Ref) Ref { return b.Dot(v[n:], v[:n]) })
		in := append(append([]float64(nil), x...), y...)
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		a, bv := g1.Value(in), g2.Value(in)
		return math.Abs(a-want) <= 1e-12*(1+math.Abs(want)) && a == bv
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPowiMatchesPow for integer exponents on positive bases.
func TestQuickPowiMatchesPow(t *testing.T) {
	check := func(base float64, exp uint8) bool {
		x := math.Abs(math.Mod(base, 3)) + 0.1
		k := int(exp%7) - 3 // exponents −3..3
		g := Compile(1, func(b *Builder, v []Ref) Ref { return b.Powi(v[0], k) })
		got := g.Value([]float64{x})
		want := math.Pow(x, float64(k))
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHVPSymmetry: the Hessian is symmetric, so uᵀ(Hv) == vᵀ(Hu) must
// hold for every pair of directions on a generic smooth graph.
func TestQuickHVPSymmetry(t *testing.T) {
	g := Compile(4, func(b *Builder, x []Ref) Ref {
		inner := b.Add(b.Mul(x[0], x[1]), b.Mul(b.Const(0.5), b.Square(x[2])))
		return b.Add(b.Tanh(inner), b.Mul(x[3], b.Sin(x[0])))
	})
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 4)
		u := make([]float64, 4)
		v := make([]float64, 4)
		for i := range x {
			x[i] = rng.NormFloat64()
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		hu := make([]float64, 4)
		hv := make([]float64, 4)
		g.HVP(x, u, hu)
		g.HVP(x, v, hv)
		var uhv, vhu float64
		for i := range u {
			uhv += u[i] * hv[i]
			vhu += v[i] * hu[i]
		}
		return math.Abs(uhv-vhu) <= 1e-9*(1+math.Abs(uhv))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGradientLinearity: ∇(a·f + b·g) = a∇f + b∇g, built as graphs.
func TestQuickGradientLinearity(t *testing.T) {
	check := func(seed int64, araw, braw float64) bool {
		if math.IsNaN(araw) || math.IsInf(araw, 0) || math.IsNaN(braw) || math.IsInf(braw, 0) {
			return true
		}
		a := math.Mod(araw, 5)
		c := math.Mod(braw, 5)
		fProg := func(b *Builder, x []Ref) Ref { return b.Sin(b.Mul(x[0], x[1])) }
		gProg := func(b *Builder, x []Ref) Ref { return b.Exp(b.Mul(b.Const(0.3), b.Sub(x[0], x[1]))) }
		combo := Compile(2, func(b *Builder, x []Ref) Ref {
			return b.Add(b.Mul(b.Const(a), fProg(b, x)), b.Mul(b.Const(c), gProg(b, x)))
		})
		fg := Compile(2, fProg)
		gg := Compile(2, gProg)

		rng := rand.New(rand.NewSource(seed))
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		gradCombo := make([]float64, 2)
		gradF := make([]float64, 2)
		gradG := make([]float64, 2)
		combo.Grad(x, gradCombo)
		fg.Grad(x, gradF)
		gg.Grad(x, gradG)
		for i := range x {
			want := a*gradF[i] + c*gradG[i]
			if math.Abs(gradCombo[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
