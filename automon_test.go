package automon

import (
	"math"
	"testing"
)

// memComm is an in-memory NodeComm for the public-API round-trip test. It
// exercises the documented byte-level node interface: every coordinator-side
// call is turned into encoded messages and fed through HandleNodeMessage.
type memComm struct {
	t     *testing.T
	nodes []*Node
}

func (c *memComm) RequestData(id int) []float64 {
	req := &DataRequest{NodeID: id}
	reply, err := HandleNodeMessage(c.nodes[id], req.Encode())
	if err != nil {
		c.t.Fatal(err)
	}
	m, err := Decode(reply)
	if err != nil {
		c.t.Fatal(err)
	}
	return m.(*DataResponse).X
}

func (c *memComm) SendSync(id int, m *Sync) {
	if _, err := HandleNodeMessage(c.nodes[id], m.Encode()); err != nil {
		c.t.Fatal(err)
	}
}

func (c *memComm) SendSlack(id int, m *Slack) {
	if _, err := HandleNodeMessage(c.nodes[id], m.Encode()); err != nil {
		c.t.Fatal(err)
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	// The README quickstart, condensed: monitor ‖x̄‖² over three nodes.
	f := NewFunction("norm2", 2, func(b *Builder, x []Ref) Ref {
		return b.Add(b.Square(x[0]), b.Square(x[1]))
	})
	const n = 3
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(i, f)
		nodes[i].SetData([]float64{0.5, 0.5})
	}
	comm := &memComm{t: t, nodes: nodes}
	const eps = 0.1
	coord := NewCoordinator(f, n, Config{Epsilon: eps}, comm)
	if err := coord.Init(); err != nil {
		t.Fatal(err)
	}
	if got := coord.Estimate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("initial estimate = %v, want 0.5", got)
	}

	// Drift all nodes; every violation goes through the byte codec.
	for step := 1; step <= 40; step++ {
		for i := range nodes {
			v := 0.5 + 0.02*float64(step)
			viol := nodes[i].UpdateData([]float64{v, v})
			if viol == nil {
				continue
			}
			decoded, err := Decode(viol.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if err := coord.HandleViolation(decoded.(*Violation)); err != nil {
				t.Fatal(err)
			}
		}
		truth := 2 * (0.5 + 0.02*float64(step)) * (0.5 + 0.02*float64(step))
		if err := math.Abs(coord.Estimate() - truth); err > eps+1e-9 {
			t.Fatalf("step %d: estimate error %v above ε", step, err)
		}
	}
	// ‖·‖² is convex with constant Hessian: ADCD-E must have been chosen.
	if coord.Method().String() != "ADCD-E" {
		t.Fatalf("method = %v, want ADCD-E", coord.Method())
	}
}

func TestHandleNodeMessageRejectsViolation(t *testing.T) {
	f := NewFunction("id", 1, func(b *Builder, x []Ref) Ref { return x[0] })
	node := NewNode(0, f)
	raw := (&Violation{NodeID: 0, Kind: 2, X: []float64{1}}).Encode()
	if _, err := HandleNodeMessage(node, raw); err == nil {
		t.Fatal("violations must be rejected node-side")
	}
	if _, err := HandleNodeMessage(node, []byte{0xFF}); err == nil {
		t.Fatal("garbage must be rejected")
	}
}
