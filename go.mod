module automon

go 1.22
